// Closed-loop load generator for the serving layer: N client threads fire
// MetaLog queries at a KgService over a generated shareholding network and
// the throughput/latency difference between the uncached path (every
// request compiles + evaluates) and the warm result cache (every request is
// a lookup against the pinned epoch) is written to BENCH_service.json.
//
// Usage: bench_service [output.json] [clients] [seconds_per_phase]
// Default output file: BENCH_service.json in the working directory.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "finkg/generator.h"
#include "service/service.h"

namespace {

using Clock = std::chrono::steady_clock;

struct JsonWriter {
  FILE* f;
  int depth = 0;
  bool first = true;

  void Indent() {
    for (int i = 0; i < depth; ++i) std::fputs("  ", f);
  }
  void Comma() {
    if (!first) std::fputs(",\n", f);
    first = false;
    Indent();
  }
  void Open(const char* key, char bracket) {
    Comma();
    if (key != nullptr) std::fprintf(f, "\"%s\": %c\n", key, bracket);
    else std::fprintf(f, "%c\n", bracket);
    ++depth;
    first = true;
  }
  void Close(char bracket) {
    std::fputc('\n', f);
    --depth;
    Indent();
    std::fputc(bracket, f);
    first = false;
  }
  void Field(const char* key, double v) {
    Comma();
    std::fprintf(f, "\"%s\": %.6f", key, v);
  }
  void Field(const char* key, size_t v) {
    Comma();
    std::fprintf(f, "\"%s\": %zu", key, v);
  }
  void Field(const char* key, const char* v) {
    Comma();
    std::fprintf(f, "\"%s\": \"%s\"", key, v);
  }
};

// The query mix: significant-holding pairs at different thresholds.  Each
// program derives a fresh edge label, so they compile independently but
// share the snapshot encoding.
std::vector<kgm::service::QueryRequest> QueryMix() {
  const char* thresholds[] = {"0.05", "0.10", "0.15", "0.25"};
  std::vector<kgm::service::QueryRequest> mix;
  for (const char* t : thresholds) {
    kgm::service::QueryRequest request;
    request.program =
        "(p: Person)[: HOLDS; percentage: w](s: Share)"
        "[: BELONGS_TO](b: Business), w > " + std::string(t) +
        " -> exists e = skB" + std::string(t + 2) +
        "(p, b) (p)[e: SIG_HOLD](b).";
    request.language = kgm::service::QueryLanguage::kMetaLog;
    request.output = "SIG_HOLD";
    mix.push_back(std::move(request));
  }
  return mix;
}

struct PhaseResult {
  size_t queries = 0;
  size_t errors = 0;
  size_t cache_hits = 0;
  double seconds = 0;
  double qps = 0;
};

// Runs `clients` closed-loop threads against `svc` for `duration`.
PhaseResult RunPhase(kgm::service::KgService& svc,
                     const std::vector<kgm::service::QueryRequest>& mix,
                     size_t clients, double duration, bool use_cache) {
  std::atomic<size_t> queries{0};
  std::atomic<size_t> errors{0};
  std::atomic<size_t> cache_hits{0};
  std::atomic<bool> stop{false};

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      size_t i = c;  // stagger the mix across clients
      while (!stop.load(std::memory_order_relaxed)) {
        kgm::service::QueryRequest request = mix[i++ % mix.size()];
        request.use_result_cache = use_cache;
        auto result = svc.Query(request);
        queries.fetch_add(1, std::memory_order_relaxed);
        if (!result.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        } else if (result->result_cache_hit) {
          cache_hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(duration));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();

  PhaseResult r;
  r.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  r.queries = queries.load();
  r.errors = errors.load();
  r.cache_hits = cache_hits.load();
  r.qps = r.seconds > 0 ? static_cast<double>(r.queries) / r.seconds : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_service.json";
  const size_t clients = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  const double phase_seconds = argc > 3 ? std::strtod(argv[3], nullptr) : 2.0;

  kgm::finkg::GeneratorConfig config;
  config.num_companies = 400;
  config.num_persons = 800;
  kgm::finkg::ShareholdingNetwork net =
      kgm::finkg::ShareholdingNetwork::Generate(config);

  kgm::service::KgServiceOptions options;
  options.num_workers = clients;
  options.queue_capacity = clients * 4;
  kgm::service::KgService svc(options);
  const uint64_t epoch = svc.Publish(net.ToInstanceGraph());

  const std::vector<kgm::service::QueryRequest> mix = QueryMix();

  // Warm the prepared cache so the uncached phase measures evaluation, not
  // first-compile latency; then measure with the result cache disabled vs
  // enabled (the second phase's first round misses, the rest hit).
  for (const kgm::service::QueryRequest& request : mix) {
    auto result = svc.Execute(request);
    if (!result.ok()) {
      std::fprintf(stderr, "warmup failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
  }

  PhaseResult uncached = RunPhase(svc, mix, clients, phase_seconds, false);
  PhaseResult cached = RunPhase(svc, mix, clients, phase_seconds, true);
  const double speedup = uncached.qps > 0 ? cached.qps / uncached.qps : 0;

  kgm::service::StatsSnapshot stats = svc.Stats();

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::perror("fopen");
    return 1;
  }
  JsonWriter w{f};
  w.Open(nullptr, '{');
  w.Field("bench", "service");
  w.Field("clients", clients);
  w.Field("phase_seconds", phase_seconds);
  // Interpreting this file across runs: qps/latency depend on the host.
  // On a 1-CPU CI runner the closed-loop clients time-share one core with
  // the worker pool, so absolute numbers there are indicative only —
  // compare phases within a single run, not across machines.
  w.Field("host_cpus",
          static_cast<size_t>(std::thread::hardware_concurrency()));
  w.Field("note",
          "qps and latency are host-dependent; on a 1-cpu CI runner "
          "clients contend with the worker pool, compare only within "
          "this run");
  w.Field("companies", static_cast<size_t>(config.num_companies));
  w.Field("persons", static_cast<size_t>(config.num_persons));
  w.Field("epoch", static_cast<size_t>(epoch));
  w.Open("uncached", '{');
  w.Field("queries", uncached.queries);
  w.Field("errors", uncached.errors);
  w.Field("qps", uncached.qps);
  w.Close('}');
  w.Open("result_cached", '{');
  w.Field("queries", cached.queries);
  w.Field("errors", cached.errors);
  w.Field("cache_hits", cached.cache_hits);
  w.Field("qps", cached.qps);
  w.Close('}');
  w.Field("speedup", speedup);
  w.Open("service_stats", '{');
  w.Field("queries_total", stats.queries_total);
  w.Field("queue_rejected", stats.queue_rejected);
  w.Field("prepared_cache_hits", stats.prepared_cache_hits);
  w.Field("prepared_cache_misses", stats.prepared_cache_misses);
  w.Field("latency_p50", stats.latency_p50);
  w.Field("latency_p95", stats.latency_p95);
  w.Field("latency_p99", stats.latency_p99);
  w.Close('}');
  w.Close('}');
  std::fputc('\n', f);
  std::fclose(f);

  std::printf(
      "bench_service: %zu clients  uncached %.0f qps  cached %.0f qps  "
      "speedup %.1fx  -> %s\n",
      clients, uncached.qps, cached.qps, speedup, out_path.c_str());
  if (cached.errors > 0 || uncached.errors > 0) {
    std::fprintf(stderr, "bench_service: %zu errors\n",
                 cached.errors + uncached.errors);
    return 1;
  }
  return 0;
}
