// Machine-readable reasoner benchmark: runs the finkg intensional suite at
// a sweep of (threads, shards) configurations and writes BENCH_reasoner.json
// so the perf trajectory can be tracked across PRs.
//
// Usage: reasoner_perf_report [output.json] [companies] [persons]
// Default output file: BENCH_reasoner.json in the working directory.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "instance/pipeline.h"

namespace {

// Minimal JSON emission: everything we write is numbers, booleans and
// identifier-safe strings, so escaping is not needed.
struct JsonWriter {
  FILE* f;
  int depth = 0;
  bool first = true;

  void Indent() {
    for (int i = 0; i < depth; ++i) std::fputs("  ", f);
  }
  void Comma() {
    if (!first) std::fputs(",\n", f);
    first = false;
    Indent();
  }
  void Open(const char* key, char bracket) {
    Comma();
    if (key != nullptr) std::fprintf(f, "\"%s\": %c\n", key, bracket);
    else std::fprintf(f, "%c\n", bracket);
    ++depth;
    first = true;
  }
  void Close(char bracket) {
    std::fputc('\n', f);
    --depth;
    Indent();
    std::fputc(bracket, f);
    first = false;
  }
  void Field(const char* key, double v) {
    Comma();
    std::fprintf(f, "\"%s\": %.6f", key, v);
  }
  void Field(const char* key, size_t v) {
    Comma();
    std::fprintf(f, "\"%s\": %zu", key, v);
  }
  void Field(const char* key, const char* v) {
    Comma();
    std::fprintf(f, "\"%s\": \"%s\"", key, v);
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace kgm;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_reasoner.json";
  finkg::GeneratorConfig config;
  config.num_companies = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 400;
  config.num_persons = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 600;
  config.seed = 2022;

  core::SuperSchema schema = finkg::CompanyKgSchema();
  finkg::ShareholdingNetwork net =
      finkg::ShareholdingNetwork::Generate(config);

  struct Step {
    const char* name;
    const char* program;
  };
  const Step steps[] = {
      {"owns", finkg::kOwnsProgram},
      {"controls", finkg::kControlProgram},
      {"stakeholders", finkg::kStakeholdersProgram},
      {"close_links", finkg::kCloseLinksProgram},
  };
  struct Config {
    size_t threads;
    size_t shards;  // 0 = auto
  };
  const Config configs[] = {{1, 0}, {8, 0}, {8, 1}, {8, 16}};

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  JsonWriter w{f};
  w.Open(nullptr, '{');
  w.Field("benchmark", "reasoner_intensional_suite");
  w.Field("companies", static_cast<size_t>(config.num_companies));
  w.Field("persons", static_cast<size_t>(config.num_persons));
  w.Field("holdings", net.holdings().size());
  w.Open("runs", '[');
  for (const Config& c : configs) {
    // Fresh data per configuration: components build on OWNS et al., so
    // reusing a graph would shrink later runs.
    pg::PropertyGraph data = net.ToInstanceGraph();
    instance::MaterializeOptions options;
    options.engine.num_threads = c.threads;
    options.engine.num_shards = c.shards;
    w.Open(nullptr, '{');
    w.Field("threads_requested", c.threads);
    w.Field("shards_requested", c.shards);
    w.Open("components", '[');
    for (const Step& step : steps) {
      auto stats = instance::Materialize(schema, step.program, &data, options);
      if (!stats.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", step.name,
                     stats.status().ToString().c_str());
        std::fclose(f);
        return 1;
      }
      const auto& es = stats->engine_stats;
      w.Open(nullptr, '{');
      w.Field("component", step.name);
      w.Field("threads_used", es.threads_used);
      w.Field("shard_count", es.shard_count);
      w.Field("load_seconds", stats->load_seconds);
      w.Field("reason_seconds", stats->reason_seconds);
      w.Field("flush_seconds", stats->flush_seconds);
      w.Field("merge_seconds", es.merge_seconds);
      w.Field("agg_finalize_seconds", es.agg_finalize_seconds);
      w.Field("staged_inserts", es.staged_inserts);
      w.Field("staged_duplicates", es.staged_duplicates);
      w.Field("shard_contentions", es.shard_contentions);
      w.Field("facts_derived", es.facts_derived);
      w.Field("iterations", es.iterations);
      w.Open("stratum_seconds", '[');
      for (double s : es.stratum_seconds) {
        w.Comma();
        std::fprintf(f, "%.6f", s);
      }
      w.Close(']');
      w.Close('}');
    }
    w.Close(']');
    w.Close('}');
  }
  w.Close(']');
  w.Close('}');
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
