// Machine-readable reasoner benchmark: runs the finkg intensional suite at
// a sweep of (threads, shards) configurations and writes BENCH_reasoner.json
// so the perf trajectory can be tracked across PRs.
//
// Usage: reasoner_perf_report [output.json] [companies] [persons]
// Default output file: BENCH_reasoner.json in the working directory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "instance/pipeline.h"
#include "vadalog/engine.h"
#include "vadalog/parser.h"

namespace {

// Minimal JSON emission: everything we write is numbers, booleans and
// identifier-safe strings, so escaping is not needed.
struct JsonWriter {
  FILE* f;
  int depth = 0;
  bool first = true;

  void Indent() {
    for (int i = 0; i < depth; ++i) std::fputs("  ", f);
  }
  void Comma() {
    if (!first) std::fputs(",\n", f);
    first = false;
    Indent();
  }
  void Open(const char* key, char bracket) {
    Comma();
    if (key != nullptr) std::fprintf(f, "\"%s\": %c\n", key, bracket);
    else std::fprintf(f, "%c\n", bracket);
    ++depth;
    first = true;
  }
  void Close(char bracket) {
    std::fputc('\n', f);
    --depth;
    Indent();
    std::fputc(bracket, f);
    first = false;
  }
  void Field(const char* key, double v) {
    Comma();
    std::fprintf(f, "\"%s\": %.6f", key, v);
  }
  void Field(const char* key, size_t v) {
    Comma();
    std::fprintf(f, "\"%s\": %zu", key, v);
  }
  void Field(const char* key, const char* v) {
    Comma();
    std::fprintf(f, "\"%s\": \"%s\"", key, v);
  }
};

// Restricted-chase existential benchmark: a dense recursive closure whose
// head mints one automatic null per reachable pair, so every iteration
// both screens against earlier nulls and mints new ones.  The baseline is
// the pre-barrier implementation itself, re-enabled in-binary via
// EngineOptions::legacy_sequential_chase (the eager chase with live head
// checks, which is also what a multi-threaded request used to silently
// fall back to) — so speedup_vs_legacy measures exactly what this change
// replaced, on the same build, and the differential test guarantees both
// paths produce bit-identical output.
struct ChaseBenchResult {
  double reason_seconds = 0;
  kgm::vadalog::EngineStats stats;
  bool ok = false;
};

ChaseBenchResult RunChaseBench(size_t nodes, size_t edges, size_t threads,
                               bool legacy) {
  using namespace kgm;
  using namespace kgm::vadalog;
  ChaseBenchResult out;
  FactDb db;
  Rng rng(4051);
  for (size_t i = 0; i < edges; ++i) {
    auto a = static_cast<int64_t>(rng.NextBelow(nodes));
    auto b = static_cast<int64_t>(rng.NextBelow(nodes));
    db.Add("edge", {Value(a), Value(b)});
  }
  // Conjunctive existential heads: satisfaction needs a witness w with
  // rel(x, y, w) AND mark(w), so every head check is a two-atom
  // backtracking search.  The eager chase pays it live on each of the
  // ~600k firings; the barrier chase pays a hash probe per duplicate and
  // the expensive screen only per distinct head.
  auto parsed = ParseProgram(
      "edge(x, y) -> exists w rel(x, y, w), mark(w).\n"
      "rel(x, y, w), edge(y, z) -> exists v rel(x, z, v), mark(v).\n");
  if (!parsed.ok()) {
    std::fprintf(stderr, "chase bench parse failed: %s\n",
                 parsed.status().ToString().c_str());
    return out;
  }
  EngineOptions options;
  options.chase_mode = ChaseMode::kRestricted;
  options.num_threads = threads;
  options.legacy_sequential_chase = legacy;
  Engine engine(std::move(*parsed), options);
  if (!engine.status().ok()) return out;
  auto start = std::chrono::steady_clock::now();
  Status s = engine.Run(&db);
  auto stop = std::chrono::steady_clock::now();
  if (!s.ok()) {
    std::fprintf(stderr, "chase bench run failed: %s\n", s.ToString().c_str());
    return out;
  }
  out.reason_seconds = std::chrono::duration<double>(stop - start).count();
  out.stats = engine.stats();
  out.ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kgm;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_reasoner.json";
  finkg::GeneratorConfig config;
  config.num_companies = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 400;
  config.num_persons = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 600;
  config.seed = 2022;

  core::SuperSchema schema = finkg::CompanyKgSchema();
  finkg::ShareholdingNetwork net =
      finkg::ShareholdingNetwork::Generate(config);

  struct Step {
    const char* name;
    const char* program;
  };
  const Step steps[] = {
      {"owns", finkg::kOwnsProgram},
      {"controls", finkg::kControlProgram},
      {"stakeholders", finkg::kStakeholdersProgram},
      {"close_links", finkg::kCloseLinksProgram},
  };
  struct Config {
    size_t threads;
    size_t shards;  // 0 = auto
  };
  const Config configs[] = {{1, 0}, {8, 0}, {8, 1}, {8, 16}};

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  JsonWriter w{f};
  w.Open(nullptr, '{');
  w.Field("benchmark", "reasoner_intensional_suite");
  w.Field("companies", static_cast<size_t>(config.num_companies));
  w.Field("persons", static_cast<size_t>(config.num_persons));
  w.Field("holdings", net.holdings().size());
  w.Open("runs", '[');
  for (const Config& c : configs) {
    // Fresh data per configuration: components build on OWNS et al., so
    // reusing a graph would shrink later runs.
    pg::PropertyGraph data = net.ToInstanceGraph();
    instance::MaterializeOptions options;
    options.engine.num_threads = c.threads;
    options.engine.num_shards = c.shards;
    w.Open(nullptr, '{');
    w.Field("threads_requested", c.threads);
    w.Field("shards_requested", c.shards);
    w.Open("components", '[');
    for (const Step& step : steps) {
      auto stats = instance::Materialize(schema, step.program, &data, options);
      if (!stats.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", step.name,
                     stats.status().ToString().c_str());
        std::fclose(f);
        return 1;
      }
      const auto& es = stats->engine_stats;
      w.Open(nullptr, '{');
      w.Field("component", step.name);
      w.Field("threads_used", es.threads_used);
      w.Field("shard_count", es.shard_count);
      w.Field("load_seconds", stats->load_seconds);
      w.Field("reason_seconds", stats->reason_seconds);
      w.Field("flush_seconds", stats->flush_seconds);
      w.Field("merge_seconds", es.merge_seconds);
      w.Field("agg_finalize_seconds", es.agg_finalize_seconds);
      w.Field("staged_inserts", es.staged_inserts);
      w.Field("staged_duplicates", es.staged_duplicates);
      w.Field("shard_contentions", es.shard_contentions);
      w.Field("facts_derived", es.facts_derived);
      w.Field("iterations", es.iterations);
      w.Open("stratum_seconds", '[');
      for (double s : es.stratum_seconds) {
        w.Comma();
        std::fprintf(f, "%.6f", s);
      }
      w.Close(']');
      w.Close('}');
    }
    w.Close(']');
    w.Close('}');
  }
  w.Close(']');

  // Cost-based join planning on the two hot intensional components.  Each
  // (component, threads) cell materializes a fresh instance twice — plan
  // off and greedy — with the OWNS prerequisite materialized plan-off and
  // single-threaded on both sides, so the probe/wall-clock deltas attribute
  // to planning alone.  `estimate_ratio` is the estimator's own account of
  // probes (sum over plans of est_probes * uses) against the probes the
  // engine actually performed.  The instance is FIXED (independent of the
  // argv sweep size): probe counts are deterministic per (instance,
  // threads, plan_mode), so the reduction percentages are directly
  // comparable across hosts and PRs.
  finkg::GeneratorConfig planner_config;
  planner_config.num_companies = 400;
  planner_config.num_persons = 600;
  planner_config.seed = 2022;
  finkg::ShareholdingNetwork planner_net =
      finkg::ShareholdingNetwork::Generate(planner_config);
  struct PlannerStep {
    const char* name;
    const char* program;
  };
  const PlannerStep planner_steps[] = {
      {"stakeholders", finkg::kStakeholdersProgram},
      {"close_links", finkg::kCloseLinksProgram},
  };
  const size_t planner_threads[] = {1, 4};
  double best_reduction[2] = {0, 0};  // parallel to planner_steps
  w.Open("planner", '{');
  w.Field("companies", static_cast<size_t>(planner_config.num_companies));
  w.Field("persons", static_cast<size_t>(planner_config.num_persons));
  w.Field("note",
          "off/greedy pairs share the instance and prerequisites; output is "
          "bit-identical by the planner determinism contract (enforced by "
          "vadalog_planner_test), so rows differ only in evaluation cost");
  w.Open("runs", '[');
  for (size_t step_i = 0; step_i < 2; ++step_i) {
    const PlannerStep& step = planner_steps[step_i];
    for (size_t threads : planner_threads) {
      double off_seconds = 0;
      size_t off_probes = 0;
      for (int greedy = 0; greedy < 2; ++greedy) {
        pg::PropertyGraph data = planner_net.ToInstanceGraph();
        instance::MaterializeOptions prereq;
        prereq.engine.num_threads = 1;
        auto pre =
            instance::Materialize(schema, finkg::kOwnsProgram, &data, prereq);
        if (!pre.ok()) {
          std::fprintf(stderr, "planner prereq failed: %s\n",
                       pre.status().ToString().c_str());
          std::fclose(f);
          return 1;
        }
        instance::MaterializeOptions options;
        options.engine.num_threads = threads;
        options.engine.plan_mode = greedy != 0 ? vadalog::PlanMode::kGreedy
                                               : vadalog::PlanMode::kOff;
        auto stats = instance::Materialize(schema, step.program, &data,
                                           options);
        if (!stats.ok()) {
          std::fprintf(stderr, "planner %s failed: %s\n", step.name,
                       stats.status().ToString().c_str());
          std::fclose(f);
          return 1;
        }
        const auto& es = stats->engine_stats;
        double est_probes_total = 0;
        for (const auto& p : es.rule_plans) {
          est_probes_total += p.plan.est_probes * static_cast<double>(p.uses);
        }
        w.Open(nullptr, '{');
        w.Field("component", step.name);
        w.Field("threads", threads);
        w.Field("plan_mode", greedy != 0 ? "greedy" : "off");
        w.Field("reason_seconds", stats->reason_seconds);
        w.Field("join_probes", es.join_probes);
        w.Field("rule_firings", es.rule_firings);
        w.Field("facts_derived", es.facts_derived);
        if (greedy != 0) {
          w.Field("plans_built", es.plans_built);
          w.Field("plans_reordered", es.plans_reordered);
          w.Field("plan_cache_hits", es.plan_cache_hits);
          w.Field("plan_replans", es.plan_replans);
          w.Field("est_probes_saved", es.est_probes_saved);
          w.Field("est_probes_total", est_probes_total);
          w.Field("estimate_ratio",
                  es.join_probes > 0
                      ? est_probes_total / static_cast<double>(es.join_probes)
                      : 0.0);
          const double reduction =
              off_probes > 0
                  ? 100.0 * (1.0 - static_cast<double>(es.join_probes) /
                                       static_cast<double>(off_probes))
                  : 0.0;
          best_reduction[step_i] = std::max(best_reduction[step_i], reduction);
          w.Field("probe_reduction_pct", reduction);
          if (stats->reason_seconds > 0) {
            w.Field("speedup_vs_off", off_seconds / stats->reason_seconds);
          }
        } else {
          off_seconds = stats->reason_seconds;
          off_probes = es.join_probes;
        }
        w.Close('}');
      }
    }
  }
  w.Close(']');
  // Acceptance headline: the best probe reduction per component across the
  // thread sweep (the PR 7 bar is >= 30% on close_links).
  w.Open("summary", '{');
  w.Field("stakeholders_best_probe_reduction_pct", best_reduction[0]);
  w.Field("close_links_best_probe_reduction_pct", best_reduction[1]);
  w.Close('}');
  w.Close('}');

  // Restricted chase with existentials: the pre-barrier eager sequential
  // chase (in-binary via legacy_sequential_chase; also what an 8-thread
  // request used to fall back to) vs the deterministic barrier chase at 1
  // and 8 threads.  Each configuration runs kChaseReps times interleaved
  // and reports the minimum, since shared hosts are noisy.
  const size_t chase_nodes = 120;
  const size_t chase_edges = 4800;
  constexpr int kChaseReps = 3;
  struct ChaseConfig {
    const char* mode;
    size_t threads;
    bool legacy;
  };
  const ChaseConfig chase_configs[] = {
      {"legacy_sequential", 8, true},
      {"barrier", 1, false},
      {"barrier", 8, false},
  };
  constexpr int kChaseConfigs =
      static_cast<int>(sizeof(chase_configs) / sizeof(chase_configs[0]));
  ChaseBenchResult best[kChaseConfigs];
  for (int rep = 0; rep < kChaseReps; ++rep) {
    for (int i = 0; i < kChaseConfigs; ++i) {
      ChaseBenchResult r =
          RunChaseBench(chase_nodes, chase_edges, chase_configs[i].threads,
                        chase_configs[i].legacy);
      if (!r.ok) {
        std::fclose(f);
        return 1;
      }
      if (!best[i].ok || r.reason_seconds < best[i].reason_seconds) {
        best[i] = r;
      }
    }
  }
  w.Open("restricted_chase", '{');
  w.Field("program", "existential_closure_conjunctive_heads");
  w.Field("nodes", chase_nodes);
  w.Field("edges", chase_edges);
  w.Field("reps", static_cast<size_t>(kChaseReps));
  w.Field("host_cpus",
          static_cast<size_t>(std::thread::hardware_concurrency()));
  w.Field("note",
          "baseline is the pre-barrier eager sequential chase "
          "(legacy_sequential_chase), which is also what a multi-thread "
          "request used to fall back to; on a single-core host the "
          "multi-thread rows measure oversubscription, not scaling");
  w.Open("runs", '[');
  const double legacy_seconds = best[0].reason_seconds;
  for (int i = 0; i < kChaseConfigs; ++i) {
    const ChaseBenchResult& r = best[i];
    w.Open(nullptr, '{');
    w.Field("mode", chase_configs[i].mode);
    w.Field("threads_requested", chase_configs[i].threads);
    w.Field("threads_used", r.stats.threads_used);
    w.Field("reason_seconds", r.reason_seconds);
    w.Field("chase_replay_seconds", r.stats.chase_replay_seconds);
    w.Field("facts_derived", r.stats.facts_derived);
    w.Field("nulls_minted", r.stats.nulls_minted);
    w.Field("chase_candidates", r.stats.chase_candidates);
    w.Field("chase_screened", r.stats.chase_screened);
    w.Field("chase_deduped", r.stats.chase_deduped);
    w.Field("chase_rechecks", r.stats.chase_rechecks);
    w.Field("chase_recheck_drops", r.stats.chase_recheck_drops);
    if (!chase_configs[i].legacy && r.reason_seconds > 0) {
      w.Field("speedup_vs_legacy", legacy_seconds / r.reason_seconds);
    }
    w.Close('}');
  }
  w.Close(']');
  w.Close('}');

  w.Close('}');
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
