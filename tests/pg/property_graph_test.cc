#include "pg/property_graph.h"

#include <gtest/gtest.h>

namespace kgm::pg {
namespace {

TEST(PropertyGraphTest, AddNodesAndEdges) {
  PropertyGraph g;
  NodeId a = g.AddNode("Person", {{"name", Value("ada")}});
  NodeId b = g.AddNode("Person", {{"name", Value("bob")}});
  EdgeId e = g.AddEdge(a, b, "KNOWS", {{"since", Value(int64_t{1999})}});
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge(e).from, a);
  EXPECT_EQ(g.edge(e).to, b);
  EXPECT_EQ(g.edge(e).label, "KNOWS");
  ASSERT_NE(g.NodeProperty(a, "name"), nullptr);
  EXPECT_EQ(*g.NodeProperty(a, "name"), Value("ada"));
  ASSERT_NE(g.EdgeProperty(e, "since"), nullptr);
  EXPECT_EQ(g.NodeProperty(a, "missing"), nullptr);
}

TEST(PropertyGraphTest, LabelIndexes) {
  PropertyGraph g;
  NodeId a = g.AddNode("Person");
  g.AddNode("Company");
  NodeId c = g.AddNode("Person");
  EXPECT_EQ(g.NodesWithLabel("Person"), (std::vector<NodeId>{a, c}));
  EXPECT_TRUE(g.NodesWithLabel("Nothing").empty());
  EXPECT_EQ(g.NodeLabels(), (std::vector<std::string>{"Company", "Person"}));
}

TEST(PropertyGraphTest, MultiLabelNodes) {
  PropertyGraph g;
  NodeId a = g.AddNode(std::vector<std::string>{"LegalPerson", "Business"});
  g.AddLabel(a, "PublicListedCompany");
  g.AddLabel(a, "Business");  // duplicate: no-op
  EXPECT_EQ(g.node(a).labels.size(), 3u);
  EXPECT_TRUE(g.node(a).HasLabel("Business"));
  EXPECT_EQ(g.NodesWithLabel("PublicListedCompany"),
            (std::vector<NodeId>{a}));
}

TEST(PropertyGraphTest, Adjacency) {
  PropertyGraph g;
  NodeId a = g.AddNode("N");
  NodeId b = g.AddNode("N");
  NodeId c = g.AddNode("N");
  EdgeId ab = g.AddEdge(a, b, "E");
  EdgeId ac = g.AddEdge(a, c, "E");
  EdgeId ca = g.AddEdge(c, a, "E");
  EXPECT_EQ(g.OutEdges(a), (std::vector<EdgeId>{ab, ac}));
  EXPECT_EQ(g.InEdges(a), (std::vector<EdgeId>{ca}));
  EXPECT_EQ(g.InEdges(b), (std::vector<EdgeId>{ab}));
}

TEST(PropertyGraphTest, DeleteNodeCascadesToEdges) {
  PropertyGraph g;
  NodeId a = g.AddNode("N");
  NodeId b = g.AddNode("N");
  EdgeId e = g.AddEdge(a, b, "E");
  g.DeleteNode(b);
  EXPECT_FALSE(g.HasNode(b));
  EXPECT_FALSE(g.HasEdge(e));
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.NodesWithLabel("N").size() == 1 &&
              g.NodesWithLabel("N")[0] == a);
}

TEST(PropertyGraphTest, FindNodeByProperty) {
  PropertyGraph g;
  g.AddNode("Person", {{"fiscalCode", Value("AAA")}});
  NodeId b = g.AddNode("Person", {{"fiscalCode", Value("BBB")}});
  EXPECT_EQ(g.FindNode("Person", "fiscalCode", Value("BBB")), b);
  EXPECT_EQ(g.FindNode("Person", "fiscalCode", Value("ZZZ")), kInvalidNode);
  EXPECT_EQ(g.FindNode("Company", "fiscalCode", Value("AAA")), kInvalidNode);
}

TEST(PropertyGraphTest, SetPropertiesAfterCreation) {
  PropertyGraph g;
  NodeId a = g.AddNode("N");
  EdgeId e = g.AddEdge(a, a, "SELF");
  g.SetNodeProperty(a, "k", Value(int64_t{1}));
  g.SetEdgeProperty(e, "w", Value(0.5));
  EXPECT_EQ(*g.NodeProperty(a, "k"), Value(int64_t{1}));
  EXPECT_EQ(*g.EdgeProperty(e, "w"), Value(0.5));
  g.SetNodeProperty(a, "k", Value(int64_t{2}));  // overwrite
  EXPECT_EQ(*g.NodeProperty(a, "k"), Value(int64_t{2}));
}

TEST(PropertyGraphTest, CloneIsIndependent) {
  PropertyGraph g;
  NodeId a = g.AddNode("N", {{"x", Value(int64_t{1})}});
  PropertyGraph copy = g.Clone();
  copy.SetNodeProperty(a, "x", Value(int64_t{9}));
  copy.AddNode("N");
  EXPECT_EQ(*g.NodeProperty(a, "x"), Value(int64_t{1}));
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(copy.num_nodes(), 2u);
}

TEST(PropertyGraphTest, EdgeLabelQueries) {
  PropertyGraph g;
  NodeId a = g.AddNode("N");
  NodeId b = g.AddNode("N");
  EdgeId e1 = g.AddEdge(a, b, "OWNS");
  g.AddEdge(b, a, "CONTROLS");
  EdgeId e3 = g.AddEdge(a, b, "OWNS");
  EXPECT_EQ(g.EdgesWithLabel("OWNS"), (std::vector<EdgeId>{e1, e3}));
  EXPECT_EQ(g.EdgeLabels(), (std::vector<std::string>{"CONTROLS", "OWNS"}));
}

TEST(PropertyGraphTest, DebugStringContainsStructure) {
  PropertyGraph g;
  NodeId a = g.AddNode("Person", {{"name", Value("ada")}});
  NodeId b = g.AddNode("Person");
  g.AddEdge(a, b, "KNOWS");
  std::string s = g.DebugString();
  EXPECT_NE(s.find(":Person"), std::string::npos);
  EXPECT_NE(s.find("KNOWS"), std::string::npos);
  EXPECT_NE(s.find("\"ada\""), std::string::npos);
}

}  // namespace
}  // namespace kgm::pg
