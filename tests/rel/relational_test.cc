#include "rel/relational.h"

#include <gtest/gtest.h>

namespace kgm::rel {
namespace {

TableSchema PersonSchema() {
  TableSchema s;
  s.name = "person";
  s.columns = {{"fiscal_code", ColumnType::kString, false},
               {"name", ColumnType::kString, true},
               {"age", ColumnType::kInt, true}};
  s.primary_key = {"fiscal_code"};
  return s;
}

TEST(TableTest, InsertAndLookup) {
  Table t(PersonSchema());
  ASSERT_TRUE(t.Insert({Value("A"), Value("ada"), Value(int64_t{36})}).ok());
  ASSERT_TRUE(t.Insert({Value("B"), Value("bob"), Value()}).ok());
  EXPECT_EQ(t.size(), 2u);
  auto rows = t.Lookup("name", Value("ada"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ((*rows[0])[0], Value("A"));
}

TEST(TableTest, ArityMismatchRejected) {
  Table t(PersonSchema());
  Status s = t.Insert({Value("A")});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, TypeMismatchRejected) {
  Table t(PersonSchema());
  Status s = t.Insert({Value("A"), Value("x"), Value("not-an-int")});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, NotNullEnforced) {
  Table t(PersonSchema());
  Status s = t.Insert({Value(), Value("x"), Value(int64_t{1})});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, PrimaryKeyEnforced) {
  Table t(PersonSchema());
  ASSERT_TRUE(t.Insert({Value("A"), Value("a"), Value()}).ok());
  Status s = t.Insert({Value("A"), Value("other"), Value()});
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  const Tuple* found = t.FindByPrimaryKey({Value("A")});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ((*found)[1], Value("a"));
}

TEST(TableTest, UniqueConstraintEnforced) {
  TableSchema s = PersonSchema();
  s.unique_keys = {{"name"}};
  Table t(s);
  ASSERT_TRUE(t.Insert({Value("A"), Value("ada"), Value()}).ok());
  Status dup = t.Insert({Value("B"), Value("ada"), Value()});
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(TableTest, SkolemValuesAdmissibleInStringColumns) {
  Table t(PersonSchema());
  Value oid = SkolemTable::Global().Intern("skP", {Value("seed")});
  EXPECT_TRUE(t.Insert({oid, Value("x"), Value()}).ok());
}

TEST(DatabaseTest, CreateAndFetchTables) {
  Database db;
  ASSERT_TRUE(db.CreateTable(PersonSchema()).ok());
  EXPECT_TRUE(db.HasTable("person"));
  EXPECT_FALSE(db.HasTable("nope"));
  EXPECT_EQ(db.CreateTable(PersonSchema()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"person"}));
}

TEST(DatabaseTest, ForeignKeyValidation) {
  Database db;
  ASSERT_TRUE(db.CreateTable(PersonSchema()).ok());
  TableSchema holds;
  holds.name = "holds";
  holds.columns = {{"person_fc", ColumnType::kString, false},
                   {"share_id", ColumnType::kInt, false}};
  holds.foreign_keys = {{"fk_holder", {"person_fc"}, "person",
                         {"fiscal_code"}}};
  ASSERT_TRUE(db.CreateTable(holds).ok());

  ASSERT_TRUE(db.GetTable("person")
                  ->Insert({Value("A"), Value("ada"), Value()})
                  .ok());
  ASSERT_TRUE(
      db.GetTable("holds")->Insert({Value("A"), Value(int64_t{1})}).ok());
  EXPECT_TRUE(db.ValidateForeignKeys().ok());

  ASSERT_TRUE(
      db.GetTable("holds")->Insert({Value("Z"), Value(int64_t{2})}).ok());
  EXPECT_EQ(db.ValidateForeignKeys().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DatabaseTest, NullForeignKeyIsNotChecked) {
  Database db;
  ASSERT_TRUE(db.CreateTable(PersonSchema()).ok());
  TableSchema ref;
  ref.name = "ref";
  ref.columns = {{"person_fc", ColumnType::kString, true}};
  ref.foreign_keys = {{"", {"person_fc"}, "person", {"fiscal_code"}}};
  ASSERT_TRUE(db.CreateTable(ref).ok());
  ASSERT_TRUE(db.GetTable("ref")->Insert({Value()}).ok());
  EXPECT_TRUE(db.ValidateForeignKeys().ok());
}

TEST(DdlTest, RendersConstraints) {
  TableSchema person = PersonSchema();
  TableSchema holds;
  holds.name = "holds";
  holds.columns = {{"person_fc", ColumnType::kString, false},
                   {"pct", ColumnType::kDouble, true}};
  holds.unique_keys = {{"person_fc", "pct"}};
  holds.foreign_keys = {{"fk_holder", {"person_fc"}, "person",
                         {"fiscal_code"}}};
  std::string ddl = RenderSqlDdl({person, holds});
  EXPECT_NE(ddl.find("CREATE TABLE person"), std::string::npos);
  EXPECT_NE(ddl.find("fiscal_code VARCHAR(255) NOT NULL"),
            std::string::npos);
  EXPECT_NE(ddl.find("PRIMARY KEY (fiscal_code)"), std::string::npos);
  EXPECT_NE(ddl.find("UNIQUE (person_fc, pct)"), std::string::npos);
  EXPECT_NE(ddl.find(
                "CONSTRAINT fk_holder FOREIGN KEY (person_fc) REFERENCES "
                "person (fiscal_code)"),
            std::string::npos);
}

}  // namespace
}  // namespace kgm::rel
