// The lint pipeline: golden diagnostics per pass, the broken-program
// corpus, MetaLog provenance anchoring, and admission-time rejection
// through KgService.

#include "lint/lint.h"

#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "finkg/company_kg.h"
#include "instance/pipeline.h"
#include "service/service.h"
#include "vadalog/parser.h"

namespace kgm::lint {
namespace {

const Diagnostic* FindPass(const LintResult& result, std::string_view pass) {
  for (const Diagnostic& d : result.diagnostics) {
    if (d.pass == pass) return &d;
  }
  return nullptr;
}

size_t CountPass(const LintResult& result, std::string_view pass) {
  size_t n = 0;
  for (const Diagnostic& d : result.diagnostics) n += d.pass == pass;
  return n;
}

// The family program with the Family label atom repeated on f: the join
// of two affected positions leaves the dangerous variable without a ward.
const char kBrokenWarded[] =
    "(p: PhysicalPerson; surname: s)\n"
    "  -> exists f = skFamily(s)\n"
    "     (p)[: BELONGS_TO_FAMILY](f: Family; familyName: s).\n"
    "(p: PhysicalPerson)[: BELONGS_TO_FAMILY](f: Family),\n"
    "(p)[: OWNS](b: Business)\n"
    "  -> exists e = skFamOwns(f, b) (f)[e: FAMILY_OWNS](b).\n";

// ---------------------------------------------------------------- Vadalog

TEST(LintVadalogTest, CleanProgramIsClean) {
  LintResult result = LintVadalogSource(
      "@input(\"edge\").\n"
      "edge(x, y) -> reach(x, y).\n"
      "reach(x, y), edge(y, z) -> reach(x, z).\n"
      "@output(\"reach\").\n");
  EXPECT_TRUE(result.empty()) << RenderText(result);
}

TEST(LintVadalogTest, UnsafeHeadVariableIsError) {
  LintResult result = LintVadalogSource(
      "@input(\"p\").\n"
      "p(x) -> q(x, y).\n"
      "@output(\"q\").\n");
  const Diagnostic* d = FindPass(result, "safety");
  ASSERT_NE(d, nullptr) << RenderText(result);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->loc.line, 2);
  EXPECT_EQ(d->rule_index, 0);
  EXPECT_NE(d->message.find("variable y"), std::string::npos) << d->message;
  EXPECT_TRUE(result.has_errors());
}

TEST(LintVadalogTest, NegationInRecursiveSccIsError) {
  LintResult result = LintVadalogSource(
      "@fact p(\"a\").\n"
      "p(x), not q(x) -> q(x).\n"
      "@output(\"q\").\n");
  const Diagnostic* d = FindPass(result, "stratification");
  ASSERT_NE(d, nullptr) << RenderText(result);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->loc.line, 2);
  EXPECT_NE(d->message.find("not stratified"), std::string::npos);
}

TEST(LintVadalogTest, ArityClashIsError) {
  LintResult result = LintVadalogSource(
      "@fact p(\"a\").\n"
      "p(x) -> q(x).\n"
      "p(x, y) -> r(x, y).\n"
      "@output(\"q\").\n"
      "@output(\"r\").\n");
  const Diagnostic* d = FindPass(result, "arity");
  ASSERT_NE(d, nullptr) << RenderText(result);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->loc.line, 3);
  EXPECT_NE(d->message.find("predicate p"), std::string::npos);
}

TEST(LintVadalogTest, DeadRuleIsWarnedWhenOutputsDeclared) {
  LintResult result = LintVadalogSource(
      "@input(\"edge\").\n"
      "edge(x, y) -> reach(x, y).\n"
      "edge(x, y) -> dead(x, y).\n"
      "@output(\"reach\").\n");
  const Diagnostic* unused = FindPass(result, "unused-predicate");
  ASSERT_NE(unused, nullptr) << RenderText(result);
  EXPECT_EQ(unused->severity, Severity::kWarning);
  const Diagnostic* unreachable = FindPass(result, "unreachable-rule");
  ASSERT_NE(unreachable, nullptr) << RenderText(result);
  EXPECT_EQ(unreachable->loc.line, 3);
  EXPECT_FALSE(result.has_errors());
}

TEST(LintVadalogTest, UndefinedPredicateIsWarned) {
  LintResult result = LintVadalogSource(
      "ghost(x) -> q(x).\n"
      "@output(\"q\").\n");
  const Diagnostic* d = FindPass(result, "undefined-predicate");
  ASSERT_NE(d, nullptr) << RenderText(result);
  EXPECT_NE(d->message.find("ghost"), std::string::npos);
}

TEST(LintVadalogTest, ExternalPredicatesAreExempt) {
  LintOptions options;
  options.external_predicates = {"ghost"};
  vadalog::Program program;
  auto parsed = vadalog::ParseProgram("ghost(x) -> q(x).\n@output(\"q\").\n");
  ASSERT_TRUE(parsed.ok());
  LintResult result = RunLints(*parsed, options);
  EXPECT_EQ(FindPass(result, "undefined-predicate"), nullptr)
      << RenderText(result);
}

TEST(LintVadalogTest, SingletonVariableWarnsUnlessUnderscored) {
  LintResult dirty = LintVadalogSource(
      "@input(\"p\").\np(x, y) -> q(x).\n@output(\"q\").\n");
  const Diagnostic* d = FindPass(dirty, "singleton-variable");
  ASSERT_NE(d, nullptr) << RenderText(dirty);
  EXPECT_NE(d->message.find("variable y"), std::string::npos);

  LintResult clean = LintVadalogSource(
      "@input(\"p\").\np(x, _y) -> q(x).\n@output(\"q\").\n");
  EXPECT_EQ(FindPass(clean, "singleton-variable"), nullptr)
      << RenderText(clean);
}

TEST(LintVadalogTest, MagicFutilityWarnsWhenBindingNeverReachesRecursion) {
  // `out`'s binding flows only into the extensional `flag`; the recursive
  // `tc` subgoal is all-free, so a bound point query on `out` still
  // evaluates the entire closure.
  LintResult result = LintVadalogSource(
      "@input(\"edge\").\n"
      "@input(\"flag\").\n"
      "edge(x, y) -> tc(x, y).\n"
      "tc(x, y), edge(y, z) -> tc(x, z).\n"
      "flag(c), tc(_x, _y) -> out(c).\n"
      "@output(\"out\").\n");
  const Diagnostic* d = FindPass(result, "magic-futility");
  ASSERT_NE(d, nullptr) << RenderText(result);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("no bound argument reaches a recursive"),
            std::string::npos)
      << d->message;
  EXPECT_FALSE(result.has_errors());

  LintOptions off;
  off.magic_futility = false;
  vadalog::Program program;
  auto parsed = vadalog::ParseProgram(
      "@input(\"edge\").\n"
      "@input(\"flag\").\n"
      "edge(x, y) -> tc(x, y).\n"
      "tc(x, y), edge(y, z) -> tc(x, z).\n"
      "flag(c), tc(_x, _y) -> out(c).\n"
      "@output(\"out\").\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(FindPass(RunLints(*parsed, off), "magic-futility"), nullptr);
}

TEST(LintVadalogTest, MagicFutilityWarnsOnAggregateFallback) {
  LintResult result = LintVadalogSource(
      "@input(\"edge\").\n"
      "edge(x, y) -> tc(x, y).\n"
      "tc(x, y), edge(y, z) -> tc(x, z).\n"
      "tc(x, y), n = mcount(<y>) -> cnt(x, n).\n"
      "@output(\"cnt\").\n");
  const Diagnostic* d = FindPass(result, "magic-futility");
  ASSERT_NE(d, nullptr) << RenderText(result);
  EXPECT_NE(d->message.find("fall back to full materialization"),
            std::string::npos)
      << d->message;
}

TEST(LintVadalogTest, MagicFutilitySilentOnBeneficialAndNonRecursive) {
  // Bound closure queries benefit (CleanProgramIsClean covers the reach
  // shape); a non-recursive projection gets magic's join restriction too,
  // so neither may warn.
  LintResult projection = LintVadalogSource(
      "@input(\"edge\").\n"
      "edge(x, y) -> out(x, y).\n"
      "@output(\"out\").\n");
  EXPECT_EQ(FindPass(projection, "magic-futility"), nullptr)
      << RenderText(projection);
}

TEST(LintVadalogTest, ParseErrorBecomesDiagnostic) {
  LintResult result = LintVadalogSource("p(x ->\n");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].pass, "parse");
  EXPECT_EQ(result.diagnostics[0].severity, Severity::kError);
}

TEST(LintVadalogTest, RenderingIsDeterministic) {
  const char kSource[] =
      "@fact p(\"a\").\n"
      "p(x) -> q(x, y).\n"
      "p(x, z) -> r(x, z).\n"
      "@output(\"q\").\n"
      "@output(\"r\").\n";
  LintResult a = LintVadalogSource(kSource);
  LintResult b = LintVadalogSource(kSource);
  EXPECT_EQ(RenderText(a, "f"), RenderText(b, "f"));
  EXPECT_EQ(RenderJson(a, "f"), RenderJson(b, "f"));
  // Errors sort before warnings at the same location.
  ASSERT_FALSE(a.diagnostics.empty());
  EXPECT_EQ(a.diagnostics.front().severity, a.max_severity());
}

// ---------------------------------------------------------------- MetaLog

TEST(LintMetaLogTest, WardednessViolationAnchorsAtMetaLogRule) {
  metalog::GraphCatalog catalog =
      instance::SchemaCatalog(finkg::CompanyKgSchema());
  LintResult result = LintMetaLogSource(kBrokenWarded, &catalog);
  const Diagnostic* d = FindPass(result, "wardedness");
  ASSERT_NE(d, nullptr) << RenderText(result);
  EXPECT_EQ(d->severity, Severity::kError);
  // The finding is reported at the second MetaLog rule (line 4), not at
  // whatever compiled Vadalog rule MTV produced from it.
  EXPECT_EQ(d->loc.line, 4);
  EXPECT_EQ(d->rule_index, 1);
  // The 2^k star-variant expansion must not duplicate the finding.
  EXPECT_EQ(CountPass(result, "wardedness"), 1u);
}

TEST(LintMetaLogTest, CompanyKgProgramsLintClean) {
  metalog::GraphCatalog catalog =
      instance::SchemaCatalog(finkg::CompanyKgSchema());
  const char* programs[] = {
      finkg::kOwnsProgram, finkg::kControlProgram,
      finkg::kStakeholdersProgram, finkg::kFamilyProgram,
      finkg::kCloseLinksProgram};
  for (const char* source : programs) {
    LintResult result = LintMetaLogSource(source, &catalog);
    EXPECT_TRUE(result.empty()) << source << "\n" << RenderText(result);
  }
}

TEST(LintMetaLogTest, UnknownLabelIsCatalogWarning) {
  metalog::GraphCatalog catalog =
      instance::SchemaCatalog(finkg::CompanyKgSchema());
  LintResult result = LintMetaLogSource(
      "(x: Wat) -> exists c = skC(x) (x)[c: CONTROLS](x).\n", &catalog);
  const Diagnostic* d = FindPass(result, "catalog");
  ASSERT_NE(d, nullptr) << RenderText(result);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("Wat"), std::string::npos);
}

TEST(LintMetaLogTest, ParseErrorBecomesDiagnostic) {
  LintResult result = LintMetaLogSource("this is not metalog\n", nullptr);
  ASSERT_FALSE(result.diagnostics.empty());
  EXPECT_EQ(result.diagnostics[0].pass, "parse");
  EXPECT_TRUE(result.has_errors());
}

// ---------------------------------------------------------------- Service

pg::PropertyGraph TinyGraph() {
  pg::PropertyGraph g;
  pg::NodeId a = g.AddNode("PhysicalPerson", {{"surname", Value("Rossi")}});
  pg::NodeId b = g.AddNode("Business", {});
  g.AddEdge(a, b, "OWNS", {{"percentage", Value(0.6)}});
  return g;
}

TEST(LintServiceTest, QueryRejectsWardednessViolationBeforeQueueing) {
  service::KgService svc;
  svc.Publish(TinyGraph());
  service::QueryRequest request;
  request.program = kBrokenWarded;
  request.language = service::QueryLanguage::kMetaLog;
  request.output = "FAMILY_OWNS";
  auto result = svc.Query(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("rejected by lint"),
            std::string::npos)
      << result.status().ToString();

  // Execute() bypasses the queue but not the (cached) lint verdict.
  auto direct = svc.Execute(request);
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kInvalidArgument);
}

TEST(LintServiceTest, VadalogQueryRejectsUnsafeRule) {
  service::KgService svc;
  svc.Publish(TinyGraph());
  service::QueryRequest request;
  request.program = "OWNS(e, x, y, w) -> q(x, ghost).";
  request.language = service::QueryLanguage::kVadalog;
  request.output = "q";
  auto result = svc.Query(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
      << result.status().ToString();
}

TEST(LintServiceTest, AdmissionCanBeDisabled) {
  service::KgServiceOptions options;
  options.lint_admission = false;
  service::KgService svc(options);
  svc.Publish(TinyGraph());
  service::QueryRequest request;
  request.program = kBrokenWarded;
  request.language = service::QueryLanguage::kMetaLog;
  request.output = "FAMILY_OWNS";
  // Without admission the program reaches the engine; whatever the engine
  // decides, the verdict must not be the lint rejection.
  auto result = svc.Query(request);
  if (!result.ok()) {
    EXPECT_EQ(result.status().message().find("rejected by lint"),
              std::string::npos)
        << result.status().ToString();
  }
}

}  // namespace
}  // namespace kgm::lint
