#include "base/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace kgm {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(1.5).is_double());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_EQ(Value(int64_t{5}).AsInt(), 5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
  EXPECT_TRUE(Value(int64_t{5}).is_numeric());
  EXPECT_TRUE(Value(1.5).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value(0.25).AsDouble(), 0.25);
}

TEST(ValueTest, EqualityIsKindStrict) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));  // int != double
  EXPECT_NE(Value("1"), Value(int64_t{1}));
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, TotalOrder) {
  // Across kinds: ordered by kind index.
  EXPECT_LT(Value(), Value(false));
  EXPECT_LT(Value(true), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{99}), Value(0.0));
  EXPECT_LT(Value(0.5), Value("a"));
  // Within kinds.
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  Value a(std::string("hello"));
  Value b(std::string("hello"));
  EXPECT_EQ(a.Hash(), b.Hash());
  std::unordered_set<Value, ValueHash> set;
  set.insert(a);
  set.insert(b);
  EXPECT_EQ(set.size(), 1u);
  set.insert(Value(int64_t{1}));
  set.insert(Value(1.0));
  EXPECT_EQ(set.size(), 3u);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(Value("x").ToString(), "\"x\"");
  EXPECT_EQ(Value(LabeledNull{7}).ToString(), "_:n7");
}

TEST(LabeledNullTest, DistinctIds) {
  NullFactory factory;
  Value a = factory.Fresh();
  Value b = factory.Fresh();
  EXPECT_TRUE(a.is_labeled_null());
  EXPECT_NE(a, b);
  EXPECT_EQ(factory.count(), 2u);
}

TEST(SkolemTableTest, InterningIsDeterministicAndInjective) {
  SkolemTable& table = SkolemTable::Global();
  Value a = table.Intern("skN", {Value(int64_t{1})});
  Value b = table.Intern("skN", {Value(int64_t{1})});
  Value c = table.Intern("skN", {Value(int64_t{2})});
  Value d = table.Intern("skM", {Value(int64_t{1})});
  EXPECT_EQ(a, b);  // deterministic
  EXPECT_NE(a, c);  // injective in arguments
  EXPECT_NE(a, d);  // range-disjoint across functors
  EXPECT_TRUE(a.is_skolem());
  EXPECT_EQ(table.FunctorOf(a.AsSkolem()), "skN");
  ASSERT_EQ(table.ArgsOf(a.AsSkolem()).size(), 1u);
  EXPECT_EQ(table.ArgsOf(a.AsSkolem())[0], Value(int64_t{1}));
}

// StableHash must be a pure function of term CONTENT — the intern-table id
// (which depends on how many terms the process interned before) must not
// enter it.  The test recomputes the documented formula by hand, after
// padding the table with unrelated terms so the ref ids are shifted away
// from any accidental id/content agreement.
TEST(SkolemTableTest, StableHashIsContentAddressed) {
  SkolemTable& table = SkolemTable::Global();
  for (int i = 0; i < 50; ++i) {
    table.Intern("skPad", {Value(int64_t{i})});
  }
  Value arg("stable-arg");
  Value v = table.Intern("skStable", {arg, Value(int64_t{9})});
  size_t content = std::hash<std::string>{}("skStable");
  content = HashCombine(content, arg.StableHash());
  content = HashCombine(content, Value(int64_t{9}).StableHash());
  EXPECT_EQ(table.StableHashOf(v.AsSkolem()), content);
  size_t seed = static_cast<size_t>(ValueKind::kSkolem) * 0x9e3779b97f4a7c15ULL;
  EXPECT_EQ(v.StableHash(),
            seed ^ (content + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                    (seed >> 2)));
  // Scalars hash by content in both schemes.
  EXPECT_EQ(arg.StableHash(), arg.Hash());
  // Re-interning the same content yields the same stable hash even after
  // further unrelated interning.
  table.Intern("skPadLate", {Value(int64_t{-1})});
  EXPECT_EQ(table.Intern("skStable", {arg, Value(int64_t{9})}).StableHash(),
            v.StableHash());
}

TEST(SkolemTableTest, NestedSkolemArguments) {
  SkolemTable& table = SkolemTable::Global();
  Value inner = table.Intern("skIn", {Value("x")});
  Value outer1 = table.Intern("skOut", {inner});
  Value outer2 = table.Intern("skOut", {inner});
  EXPECT_EQ(outer1, outer2);
  EXPECT_NE(outer1, inner);
}

TEST(RecordTest, SortedFieldsAndEquality) {
  Value r1 = MakeRecord({{"b", Value(int64_t{2})}, {"a", Value(int64_t{1})}});
  Value r2 = MakeRecord({{"a", Value(int64_t{1})}, {"b", Value(int64_t{2})}});
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1.Hash(), r2.Hash());
  EXPECT_EQ(r1.ToString(), "{a: 1, b: 2}");
  Value r3 = MakeRecord({{"a", Value(int64_t{1})}});
  EXPECT_NE(r1, r3);
  EXPECT_LT(r3, r1);
}

TEST(RecordTest, SkolemToStringShowsArgs) {
  SkolemTable& table = SkolemTable::Global();
  Value v = table.Intern("skT", {Value("n"), Value(int64_t{3})});
  EXPECT_EQ(v.ToString(), "skT(\"n\",3)");
}

}  // namespace
}  // namespace kgm
