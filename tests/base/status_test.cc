#include "base/status.h"

#include <gtest/gtest.h>

namespace kgm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad input");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Fails() { return Internal("boom"); }
Status PropagatesThrough() {
  KGM_RETURN_IF_ERROR(Fails());
  return OkStatus();
}

TEST(MacrosTest, ReturnIfError) {
  Status s = PropagatesThrough();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

Result<int> GivesSeven() { return 7; }
Result<int> GivesError() { return OutOfRange("nope"); }

Result<int> UsesAssignOrReturn(bool fail) {
  KGM_ASSIGN_OR_RETURN(int a, fail ? GivesError() : GivesSeven());
  return a + 1;
}

TEST(MacrosTest, AssignOrReturn) {
  EXPECT_EQ(UsesAssignOrReturn(false).value(), 8);
  EXPECT_EQ(UsesAssignOrReturn(true).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace kgm
