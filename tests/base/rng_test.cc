#include "base/rng.h"

#include <gtest/gtest.h>

namespace kgm {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(123);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

}  // namespace
}  // namespace kgm
