#include "base/strings.h"

#include <gtest/gtest.h>

namespace kgm {
namespace {

TEST(SplitTest, Basics) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(TrimTest, Basics) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nx"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(IdentTest, Classification) {
  EXPECT_TRUE(IsIdentStart('a'));
  EXPECT_TRUE(IsIdentStart('_'));
  EXPECT_FALSE(IsIdentStart('1'));
  EXPECT_TRUE(IsIdentChar('1'));
  EXPECT_FALSE(IsIdentChar('-'));
}

TEST(ToLowerTest, Basics) {
  EXPECT_EQ(ToLower("AbC"), "abc");
}

TEST(ToSnakeCaseTest, PascalCase) {
  EXPECT_EQ(ToSnakeCase("PublicListedCompany"), "public_listed_company");
  EXPECT_EQ(ToSnakeCase("Business"), "business");
  EXPECT_EQ(ToSnakeCase("camelCase"), "camel_case");
  EXPECT_EQ(ToSnakeCase("HTTPServer"), "http_server");
  EXPECT_EQ(ToSnakeCase("already_snake"), "already_snake");
}

}  // namespace
}  // namespace kgm
