#include "base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace kgm {
namespace {

TEST(ThreadPoolTest, WaitIdleIsAForkJoinBarrier) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleCanBeReused) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.WaitIdle();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(257, 0);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i] += 1; });
  // WaitIdle inside ParallelFor publishes the writes to this thread.
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 257);
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ThreadPoolTest, ParallelForSingleIndexRunsInline) {
  ThreadPool pool(2);
  size_t seen = 0;
  pool.ParallelFor(1, [&seen](size_t i) { seen = i + 1; });
  EXPECT_EQ(seen, 1u);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

}  // namespace
}  // namespace kgm
