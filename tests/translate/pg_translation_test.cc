// Tests for the super-schema -> PG translation (Section 5.2, Figure 6),
// covering both the native oracle and the declarative MetaLog pipeline,
// and their equivalence on the Company KG.

#include <gtest/gtest.h>

#include "finkg/company_kg.h"
#include "translate/pg_mapping.h"
#include "translate/ssst.h"

namespace kgm::translate {
namespace {

using core::PgNodeType;
using core::PgSchema;
using core::SuperSchema;

TEST(PgNativeTest, TypeAccumulation) {
  SuperSchema s = finkg::CompanyKgSchema();
  auto result = TranslateToPgNative(s);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PgSchema& pg = *result;
  // Every SM_Node survives as a node type.
  EXPECT_EQ(pg.node_types.size(), s.nodes().size());
  // PublicListedCompany accumulates all ancestor labels.
  const PgNodeType* plc = pg.FindNodeType("PublicListedCompany");
  ASSERT_NE(plc, nullptr);
  EXPECT_EQ(plc->labels,
            (std::vector<std::string>{"PublicListedCompany", "Business",
                                      "LegalPerson", "Person"}));
  // ... and inherits attributes from all levels.
  auto has_prop = [plc](const std::string& name) {
    for (const auto& p : plc->properties) {
      if (p.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_prop("stockExchange"));        // own
  EXPECT_TRUE(has_prop("shareholdingCapital"));  // Business
  EXPECT_TRUE(has_prop("businessName"));         // LegalPerson
  EXPECT_TRUE(has_prop("fiscalCode"));           // Person
}

TEST(PgNativeTest, EdgeReplicationOverDescendants) {
  SuperSchema s = finkg::CompanyKgSchema();
  PgSchema pg = TranslateToPgNative(s).value();
  // HOLDS: Person -> Share.  Person has 5 descendants-or-self
  // (Person, PhysicalPerson, LegalPerson, Business, NonBusiness,
  // PublicListedCompany) = 6; Share has 2 (Share, StockShare).
  auto holds = pg.FindRelationships("HOLDS");
  EXPECT_EQ(holds.size(), 6u * 2u);
  // RESIDES: Person x Place -> 6 x 1.
  EXPECT_EQ(pg.FindRelationships("RESIDES").size(), 6u);
  // Edge attributes survive on every replica.
  for (const auto* r : holds) {
    ASSERT_EQ(r->properties.size(), 2u);
  }
}

TEST(PgNativeTest, UniqueAndRequiredFlags) {
  SuperSchema s = finkg::CompanyKgSchema();
  PgSchema pg = TranslateToPgNative(s).value();
  const PgNodeType* person = pg.FindNodeType("Person");
  ASSERT_NE(person, nullptr);
  ASSERT_EQ(person->properties.size(), 1u);
  EXPECT_EQ(person->properties[0].name, "fiscalCode");
  EXPECT_TRUE(person->properties[0].unique);    // id + unique modifier
  EXPECT_TRUE(person->properties[0].required);  // ids are mandatory
  // Optional attribute -> not required.
  const PgNodeType* pp = pg.FindNodeType("PhysicalPerson");
  ASSERT_NE(pp, nullptr);
  for (const auto& p : pp->properties) {
    if (p.name == "birthDate") {
      EXPECT_FALSE(p.required);
    }
    if (p.name == "name") {
      EXPECT_TRUE(p.required);
    }
  }
}

TEST(PgNativeTest, IntensionalFlagsPreserved) {
  SuperSchema s = finkg::CompanyKgSchema();
  PgSchema pg = TranslateToPgNative(s).value();
  EXPECT_TRUE(pg.FindNodeType("Family")->intensional);
  for (const auto* r : pg.FindRelationships("CONTROLS")) {
    EXPECT_TRUE(r->intensional);
  }
  for (const auto* r : pg.FindRelationships("HOLDS")) {
    EXPECT_FALSE(r->intensional);
  }
}

TEST(PgNativeTest, ChildParentEdgesStrategy) {
  SuperSchema s = finkg::CompanyKgSchema();
  PgSchema pg =
      TranslateToPgNative(s, PgGeneralizationStrategy::kChildParentEdges)
          .value();
  // Single label per node, IS_A relationships instead.
  const PgNodeType* plc = pg.FindNodeType("PublicListedCompany");
  ASSERT_NE(plc, nullptr);
  EXPECT_EQ(plc->labels.size(), 1u);
  auto is_a = pg.FindRelationships("IS_A");
  // One per (child, parent) pair: PhysicalPerson, LegalPerson, Business,
  // NonBusiness, PublicListedCompany, StockShare = 6.
  EXPECT_EQ(is_a.size(), 6u);
  // No replication in this strategy.
  EXPECT_EQ(pg.FindRelationships("HOLDS").size(), 1u);
}

TEST(PgDeclarativeTest, MatchesNativeOnCompanyKg) {
  // The headline equivalence: the MetaLog Eliminate/Copy pipeline of
  // Section 5.2 and the native oracle produce the same Figure 6 schema.
  SuperSchema s = finkg::CompanyKgSchema();
  PgSchema native = TranslateToPgNative(s).value();

  DeclarativeStats stats;
  auto declarative = TranslateToPgDeclarative(s, &stats);
  ASSERT_TRUE(declarative.ok()) << declarative.status().ToString();
  EXPECT_GT(stats.eliminate_rules, 0u);
  EXPECT_GT(stats.copy_rules, 0u);

  ASSERT_EQ(declarative->node_types.size(), native.node_types.size());
  for (size_t i = 0; i < native.node_types.size(); ++i) {
    const PgNodeType& n = native.node_types[i];
    const PgNodeType& d = declarative->node_types[i];
    EXPECT_EQ(d.labels, n.labels) << n.primary_label();
    EXPECT_EQ(d.intensional, n.intensional) << n.primary_label();
    ASSERT_EQ(d.properties.size(), n.properties.size())
        << n.primary_label();
    for (size_t j = 0; j < n.properties.size(); ++j) {
      EXPECT_EQ(d.properties[j].name, n.properties[j].name)
          << n.primary_label();
      EXPECT_EQ(d.properties[j].type, n.properties[j].type)
          << n.primary_label() << "." << n.properties[j].name;
      EXPECT_EQ(d.properties[j].required, n.properties[j].required)
          << n.primary_label() << "." << n.properties[j].name;
      EXPECT_EQ(d.properties[j].unique, n.properties[j].unique)
          << n.primary_label() << "." << n.properties[j].name;
      EXPECT_EQ(d.properties[j].intensional, n.properties[j].intensional)
          << n.primary_label() << "." << n.properties[j].name;
    }
  }
  ASSERT_EQ(declarative->relationship_types.size(),
            native.relationship_types.size());
  for (size_t i = 0; i < native.relationship_types.size(); ++i) {
    const auto& n = native.relationship_types[i];
    const auto& d = declarative->relationship_types[i];
    EXPECT_EQ(d.name, n.name);
    EXPECT_EQ(d.from, n.from) << n.name;
    EXPECT_EQ(d.to, n.to) << n.name;
    EXPECT_EQ(d.intensional, n.intensional) << n.name;
    EXPECT_EQ(d.properties.size(), n.properties.size()) << n.name;
  }
}

TEST(PgDeclarativeTest, MatchesNativeOnSyntheticSchemas) {
  // Deeper hierarchy + self-edges + modifiers.
  SuperSchema s("Synthetic");
  core::AttributeDef code = core::IdAttr("code");
  code.modifiers.push_back(core::AttributeModifier::Unique());
  s.AddNode("A", {code, core::Attr("a1")});
  s.AddNode("B", {core::Attr("b1", core::AttrType::kInt)});
  s.AddNode("C", {core::OptAttr("c1", core::AttrType::kDouble)});
  s.AddNode("D", {core::Attr("d1", core::AttrType::kBool)});
  s.AddNode("E", {core::IdAttr("eid")});
  s.AddGeneralization("A", {"B"}, true, false);
  s.AddGeneralization("B", {"C", "D"}, false, true);
  s.AddEdge("SELF", "A", "A");
  s.AddEdge("CROSS", "C", "E", core::Cardinality::ZeroOrMore(),
            core::Cardinality::ZeroOrMore(),
            {core::Attr("weight", core::AttrType::kDouble)});
  ASSERT_TRUE(s.Validate().ok());

  PgSchema native = TranslateToPgNative(s).value();
  auto declarative = TranslateToPgDeclarative(s);
  ASSERT_TRUE(declarative.ok()) << declarative.status().ToString();
  EXPECT_EQ(declarative->ToString(), native.ToString());
}

TEST(SsstFacadeTest, PathsAgree) {
  SuperSchema s = finkg::CompanyKgSchema();
  SsstOptions declarative;
  declarative.path = TranslationPath::kDeclarative;
  SsstOptions native;
  native.path = TranslationPath::kNative;
  auto a = TranslateToPropertyGraph(s, declarative);
  auto b = TranslateToPropertyGraph(s, native);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->ToString(), b->ToString());
}

TEST(MappingRepositoryTest, LookupWorks) {
  EXPECT_NE(FindMapping("property_graph", "type_accumulation"), nullptr);
  EXPECT_EQ(FindMapping("property_graph", "bogus"), nullptr);
  EXPECT_EQ(FindMapping("bogus", "type_accumulation"), nullptr);
  EXPECT_FALSE(MappingRepository().empty());
}

}  // namespace
}  // namespace kgm::translate
