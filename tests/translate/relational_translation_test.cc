// Tests for the super-schema -> relational translation (Section 5.3,
// Figure 8): one relation per generalization member with parent foreign
// keys, foreign keys for functional edges, junction relations for
// many-to-many edges — and actual enforceability in the relational engine.

#include <gtest/gtest.h>

#include "finkg/company_kg.h"
#include "translate/enforce.h"
#include "translate/ssst.h"

namespace kgm::translate {
namespace {

using core::SuperSchema;

const rel::TableSchema* Find(const std::vector<rel::TableSchema>& tables,
                             std::string_view name) {
  for (const rel::TableSchema& t : tables) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

std::vector<rel::TableSchema> CompanyTables() {
  auto result = TranslateToRelationalNative(finkg::CompanyKgSchema());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(RelTranslationTest, OneRelationPerMember) {
  auto tables = CompanyTables();
  for (const char* name :
       {"person", "physical_person", "legal_person", "business",
        "non_business", "public_listed_company", "share", "stock_share",
        "place", "family", "business_event"}) {
    EXPECT_NE(Find(tables, name), nullptr) << name;
  }
}

TEST(RelTranslationTest, ChildInheritsKeyAndReferencesParent) {
  auto tables = CompanyTables();
  const rel::TableSchema* business = Find(tables, "business");
  ASSERT_NE(business, nullptr);
  // Key inherited from the hierarchy root (Person.fiscalCode).
  EXPECT_EQ(business->primary_key,
            (std::vector<std::string>{"fiscal_code"}));
  // FK to the direct parent relation.
  ASSERT_EQ(business->foreign_keys.size(), 1u);
  EXPECT_EQ(business->foreign_keys[0].ref_table, "legal_person");
  EXPECT_EQ(business->foreign_keys[0].columns,
            (std::vector<std::string>{"fiscal_code"}));
}

TEST(RelTranslationTest, FunctionalEdgeBecomesForeignKey) {
  auto tables = CompanyTables();
  // BELONGS_TO: Share (1,1) -> Business: FK on share.
  const rel::TableSchema* share = Find(tables, "share");
  ASSERT_NE(share, nullptr);
  bool has_fk = false;
  for (const auto& fk : share->foreign_keys) {
    if (fk.ref_table == "business") {
      has_fk = true;
      EXPECT_EQ(fk.columns,
                (std::vector<std::string>{"belongs_to_fiscal_code"}));
    }
  }
  EXPECT_TRUE(has_fk);
  // The FK column is NOT NULL because the edge is mandatory (1,1).
  int idx = share->ColumnIndex("belongs_to_fiscal_code");
  ASSERT_GE(idx, 0);
  EXPECT_FALSE(share->columns[idx].nullable);
  // RESIDES (0,1): nullable FK on person.
  const rel::TableSchema* person = Find(tables, "person");
  int ridx = person->ColumnIndex("resides_street");
  ASSERT_GE(ridx, 0);
  EXPECT_TRUE(person->columns[ridx].nullable);
}

TEST(RelTranslationTest, ManyToManyBecomesJunction) {
  auto tables = CompanyTables();
  const rel::TableSchema* holds = Find(tables, "holds");
  ASSERT_NE(holds, nullptr);
  // Key columns from both sides plus edge attributes.
  EXPECT_EQ(holds->primary_key,
            (std::vector<std::string>{"person_fiscal_code",
                                      "share_share_id"}));
  ASSERT_EQ(holds->foreign_keys.size(), 2u);
  EXPECT_EQ(holds->foreign_keys[0].ref_table, "person");
  EXPECT_EQ(holds->foreign_keys[1].ref_table, "share");
  EXPECT_GE(holds->ColumnIndex("right"), 0);
  EXPECT_GE(holds->ColumnIndex("percentage"), 0);
}

TEST(RelTranslationTest, CompositeKeysPropagate) {
  auto tables = CompanyTables();
  // Place has a 4-part identifier; RESIDES FK must use all parts.
  const rel::TableSchema* person = Find(tables, "person");
  ASSERT_NE(person, nullptr);
  bool found = false;
  for (const auto& fk : person->foreign_keys) {
    if (fk.ref_table == "place") {
      found = true;
      EXPECT_EQ(fk.columns.size(), 4u);
      EXPECT_EQ(fk.ref_columns.size(), 4u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RelTranslationTest, GeneratedSchemaIsEnforceable) {
  // The generated DDL must load into the relational engine and accept a
  // consistent instance while rejecting violations.
  auto tables = CompanyTables();
  rel::Database db;
  for (const auto& t : tables) {
    ASSERT_TRUE(db.CreateTable(t).ok()) << t.name;
  }
  rel::Table* person = db.GetTable("person");
  ASSERT_NE(person, nullptr);
  // person(fiscal_code, resides_* x4(nullable)).
  ASSERT_EQ(person->schema().arity(), 5u);
  ASSERT_TRUE(person
                  ->Insert({Value("FC1"), Value(), Value(), Value(),
                            Value()})
                  .ok());
  // Duplicate PK rejected.
  EXPECT_FALSE(person
                   ->Insert({Value("FC1"), Value(), Value(), Value(),
                             Value()})
                   .ok());
  EXPECT_TRUE(db.ValidateForeignKeys().ok());
}

TEST(RelTranslationTest, DdlRendersCompleteSchema) {
  auto tables = CompanyTables();
  std::string ddl = rel::RenderSqlDdl(tables);
  EXPECT_NE(ddl.find("CREATE TABLE person"), std::string::npos);
  EXPECT_NE(ddl.find("CREATE TABLE holds"), std::string::npos);
  EXPECT_NE(ddl.find("PRIMARY KEY (fiscal_code)"), std::string::npos);
  EXPECT_NE(ddl.find("REFERENCES business"), std::string::npos);
}

TEST(RelTranslationTest, UniqueModifierOnNonKeyAttribute) {
  SuperSchema s("Uni");
  core::AttributeDef vat = core::Attr("vatNumber");
  vat.modifiers.push_back(core::AttributeModifier::Unique());
  s.AddNode("Company", {core::IdAttr("code"), vat});
  auto tables = TranslateToRelationalNative(s).value();
  const rel::TableSchema* company = Find(tables, "company");
  ASSERT_NE(company, nullptr);
  ASSERT_EQ(company->unique_keys.size(), 1u);
  EXPECT_EQ(company->unique_keys[0],
            (std::vector<std::string>{"vat_number"}));
  // The UNIQUE clause appears in the DDL (the PK needs no extra UNIQUE).
  std::string ddl = rel::RenderSqlDdl(tables);
  EXPECT_NE(ddl.find("UNIQUE (vat_number)"), std::string::npos);
}

TEST(RelTranslationTest, OneToOneEdgeGetsUniqueForeignKey) {
  SuperSchema s("OneToOne");
  s.AddNode("A", {core::IdAttr("aid")});
  s.AddNode("B", {core::IdAttr("bid")});
  s.AddEdge("TWIN", "A", "B", core::Cardinality::ZeroOrOne(),
            core::Cardinality::ZeroOrOne());
  auto tables = TranslateToRelationalNative(s).value();
  const rel::TableSchema* a = Find(tables, "a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->unique_keys.size(), 1u);
  EXPECT_EQ(a->unique_keys[0], (std::vector<std::string>{"twin_bid"}));
}

TEST(RelTranslationTest, SsstFacadeDelegates) {
  auto tables = TranslateToRelational(finkg::CompanyKgSchema());
  ASSERT_TRUE(tables.ok());
  EXPECT_GT(tables->size(), 10u);
}

TEST(CsvTranslationTest, FilesAndColumns) {
  auto files = TranslateToCsv(finkg::CompanyKgSchema());
  bool found_person = false;
  bool found_holds = false;
  for (const auto& f : files) {
    if (f.file_name == "physical_person.csv") {
      found_person = true;
      // Effective attributes include the inherited fiscalCode.
      bool has_fc = false;
      for (const auto& c : f.columns) {
        if (c == "fiscal_code") has_fc = true;
      }
      EXPECT_TRUE(has_fc);
    }
    if (f.file_name == "holds.csv") {
      found_holds = true;
      EXPECT_EQ(f.columns.size(), 4u);  // from key, to key, right, pct
    }
  }
  EXPECT_TRUE(found_person);
  EXPECT_TRUE(found_holds);
}

TEST(EnforceTest, CypherConstraints) {
  auto pg = TranslateToPgNative(finkg::CompanyKgSchema()).value();
  std::string cypher = RenderCypherConstraints(pg);
  EXPECT_NE(cypher.find("REQUIRE n.fiscalCode IS UNIQUE"),
            std::string::npos);
  EXPECT_NE(cypher.find("IS NOT NULL"), std::string::npos);
}

TEST(EnforceTest, RdfsDocument) {
  std::string rdfs = RenderRdfs(finkg::CompanyKgSchema());
  EXPECT_NE(rdfs.find(":Business rdf:type rdfs:Class"), std::string::npos);
  EXPECT_NE(rdfs.find(":Business rdfs:subClassOf :LegalPerson"),
            std::string::npos);
  EXPECT_NE(rdfs.find("rdfs:domain :Person"), std::string::npos);
  EXPECT_NE(rdfs.find("xsd:double"), std::string::npos);
}

TEST(EnforceTest, CsvHeaders) {
  auto files = TranslateToCsv(finkg::CompanyKgSchema());
  std::string headers = RenderCsvHeaders(files);
  EXPECT_NE(headers.find("place.csv: street,street_number,city,postal_code"),
            std::string::npos);
}

}  // namespace
}  // namespace kgm::translate
