#include "translate/validate.h"

#include <gtest/gtest.h>

#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "translate/native.h"

namespace kgm::translate {
namespace {

struct Fixture {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  core::PgSchema pg_schema;
  Fixture() { pg_schema = TranslateToPgNative(schema).value(); }
};

pg::NodeId AddPerson(pg::PropertyGraph* g, const std::string& code) {
  return g->AddNode(std::vector<std::string>{"PhysicalPerson", "Person"},
                    {{"fiscalCode", Value(code)},
                     {"name", Value("n")},
                     {"surname", Value("s")},
                     {"gender", Value("female")}});
}

pg::NodeId AddBusiness(pg::PropertyGraph* g, const std::string& code) {
  return g->AddNode(
      std::vector<std::string>{"Business", "LegalPerson", "Person"},
      {{"fiscalCode", Value(code)},
       {"businessName", Value("b")},
       {"legalNature", Value("srl")},
       {"shareholdingCapital", Value(1000.0)}});
}

pg::NodeId AddShare(pg::PropertyGraph* g, const std::string& id,
                    pg::NodeId holder, pg::NodeId business) {
  pg::NodeId s = g->AddNode(std::vector<std::string>{"Share"},
                            {{"shareId", Value(id)},
                             {"percentage", Value(0.5)}});
  g->AddEdge(holder, s, "HOLDS",
             {{"right", Value("ownership")}, {"percentage", Value(0.5)}});
  g->AddEdge(s, business, "BELONGS_TO");
  return s;
}

TEST(ValidateTest, ConformantInstancePasses) {
  Fixture f;
  pg::PropertyGraph g;
  pg::NodeId ada = AddPerson(&g, "P1");
  pg::NodeId acme = AddBusiness(&g, "C1");
  AddShare(&g, "S1", ada, acme);
  ValidationReport report = ValidateInstance(f.schema, f.pg_schema, g);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.checked_nodes, 3u);
  EXPECT_EQ(report.checked_edges, 2u);
}

TEST(ValidateTest, GeneratedInstanceConforms) {
  Fixture f;
  finkg::GeneratorConfig config;
  config.num_companies = 60;
  config.num_persons = 90;
  pg::PropertyGraph g =
      finkg::ShareholdingNetwork::Generate(config).ToInstanceGraph();
  ValidationReport report = ValidateInstance(f.schema, f.pg_schema, g);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(ValidateTest, MissingRequiredProperty) {
  Fixture f;
  pg::PropertyGraph g;
  g.AddNode(std::vector<std::string>{"PhysicalPerson", "Person"},
            {{"fiscalCode", Value("P1")},
             {"name", Value("n")},
             {"surname", Value("s")}});  // gender missing
  ValidationReport report = ValidateInstance(f.schema, f.pg_schema, g);
  EXPECT_EQ(report.Count(Violation::Kind::kMissingRequired), 1u);
}

TEST(ValidateTest, IntensionalPropertyMayBeAbsent) {
  // numberOfStakeholders is intensional: absence is fine before
  // materialization.
  Fixture f;
  pg::PropertyGraph g;
  AddBusiness(&g, "C1");
  ValidationReport report = ValidateInstance(f.schema, f.pg_schema, g);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(ValidateTest, WrongTypeDetected) {
  Fixture f;
  pg::PropertyGraph g;
  pg::NodeId ada = AddPerson(&g, "P1");
  g.SetNodeProperty(ada, "name", Value(int64_t{7}));  // string expected
  ValidationReport report = ValidateInstance(f.schema, f.pg_schema, g);
  EXPECT_EQ(report.Count(Violation::Kind::kWrongType), 1u);
}

TEST(ValidateTest, MissingAccumulatedLabel) {
  Fixture f;
  pg::PropertyGraph g;
  g.AddNode(std::vector<std::string>{"Business", "LegalPerson"},  // Person
            {{"fiscalCode", Value("C1")},
             {"businessName", Value("b")},
             {"legalNature", Value("srl")},
             {"shareholdingCapital", Value(1.0)}});
  ValidationReport report = ValidateInstance(f.schema, f.pg_schema, g);
  EXPECT_EQ(report.Count(Violation::Kind::kMissingLabel), 1u);
}

TEST(ValidateTest, UnknownLabelAndProperty) {
  Fixture f;
  pg::PropertyGraph g;
  g.AddNode("Martian");
  pg::NodeId ada = AddPerson(&g, "P1");
  g.SetNodeProperty(ada, "shoeSize", Value(int64_t{42}));
  ValidationReport report = ValidateInstance(f.schema, f.pg_schema, g);
  EXPECT_EQ(report.Count(Violation::Kind::kUnknownLabel), 1u);
  EXPECT_EQ(report.Count(Violation::Kind::kUndeclaredProperty), 1u);
}

TEST(ValidateTest, UniqueFiscalCodeAcrossTheHierarchy) {
  // fiscalCode is unique within Person: a PhysicalPerson and a Business
  // sharing one violates it (they are both Persons).
  Fixture f;
  pg::PropertyGraph g;
  AddPerson(&g, "X1");
  AddBusiness(&g, "X1");
  ValidationReport report = ValidateInstance(f.schema, f.pg_schema, g);
  EXPECT_EQ(report.Count(Violation::Kind::kUniqueViolated), 1u);
}

TEST(ValidateTest, EndpointLabelsChecked) {
  Fixture f;
  pg::PropertyGraph g;
  pg::NodeId ada = AddPerson(&g, "P1");
  pg::NodeId bob = AddPerson(&g, "P2");
  // HOLDS must end at a Share.
  g.AddEdge(ada, bob, "HOLDS",
            {{"right", Value("ownership")}, {"percentage", Value(0.1)}});
  ValidationReport report = ValidateInstance(f.schema, f.pg_schema, g);
  EXPECT_GE(report.Count(Violation::Kind::kBadEndpoint), 1u);
}

TEST(ValidateTest, CardinalityBounds) {
  Fixture f;
  pg::PropertyGraph g;
  pg::NodeId ada = AddPerson(&g, "P1");
  pg::NodeId acme = AddBusiness(&g, "C1");
  pg::NodeId emca = AddBusiness(&g, "C2");
  // A Share must BELONGS_TO exactly one Business: zero and two both fail.
  pg::NodeId orphan = g.AddNode(std::vector<std::string>{"Share"},
                                {{"shareId", Value("S0")},
                                 {"percentage", Value(0.1)}});
  g.AddEdge(ada, orphan, "HOLDS",
            {{"right", Value("ownership")}, {"percentage", Value(0.1)}});
  pg::NodeId twice = AddShare(&g, "S1", ada, acme);
  g.AddEdge(twice, emca, "BELONGS_TO");
  ValidationReport report = ValidateInstance(f.schema, f.pg_schema, g);
  // orphan: no outgoing BELONGS_TO (min 1); twice: two outgoing (max 1).
  EXPECT_GE(report.Count(Violation::Kind::kCardinality), 2u);
  // A Share must also be HELD by at least one person (target (1,N) of
  // HOLDS is satisfied here for both shares).
}

TEST(ValidateTest, UnknownRelationship) {
  Fixture f;
  pg::PropertyGraph g;
  pg::NodeId ada = AddPerson(&g, "P1");
  pg::NodeId bob = AddPerson(&g, "P2");
  g.AddEdge(ada, bob, "TELEPORTS_TO");
  ValidationReport report = ValidateInstance(f.schema, f.pg_schema, g);
  EXPECT_EQ(report.Count(Violation::Kind::kUnknownRelationship), 1u);
}

TEST(ValidateTest, EnumAndRangeModifiersEnforced) {
  core::SuperSchema schema("Mods");
  core::AttributeDef kind = core::Attr("legalKind");
  kind.modifiers.push_back(
      core::AttributeModifier::Enum({Value("spa"), Value("srl")}));
  core::AttributeDef pct = core::Attr("quota", core::AttrType::kDouble);
  pct.modifiers.push_back(core::AttributeModifier::Range(0.0, 1.0));
  schema.AddNode("Firm", {core::IdAttr("code"), kind, pct});
  core::PgSchema pg_schema = TranslateToPgNative(schema).value();

  pg::PropertyGraph good;
  good.AddNode("Firm", {{"code", Value("F1")},
                        {"legalKind", Value("spa")},
                        {"quota", Value(0.4)}});
  EXPECT_TRUE(ValidateInstance(schema, pg_schema, good).ok());

  pg::PropertyGraph bad;
  bad.AddNode("Firm", {{"code", Value("F2")},
                       {"legalKind", Value("gmbh")},  // not enumerated
                       {"quota", Value(1.7)}});       // out of range
  ValidationReport report = ValidateInstance(schema, pg_schema, bad);
  EXPECT_EQ(report.Count(Violation::Kind::kEnumViolated), 1u);
  EXPECT_EQ(report.Count(Violation::Kind::kRangeViolated), 1u);
}

TEST(ValidateTest, ViolationCapRespected) {
  Fixture f;
  pg::PropertyGraph g;
  for (int i = 0; i < 50; ++i) g.AddNode("Martian");
  ValidateOptions options;
  options.max_violations = 10;
  ValidationReport report =
      ValidateInstance(f.schema, f.pg_schema, g, options);
  EXPECT_EQ(report.violations.size(), 10u);
}

TEST(ValidateTest, ReportRendering) {
  Fixture f;
  pg::PropertyGraph g;
  g.AddNode("Martian");
  ValidationReport report = ValidateInstance(f.schema, f.pg_schema, g);
  std::string s = report.ToString();
  EXPECT_NE(s.find("unknown_label"), std::string::npos);
  EXPECT_NE(s.find("violation"), std::string::npos);
}

}  // namespace
}  // namespace kgm::translate
