#include "translate/csv_io.h"

#include <gtest/gtest.h>

#include "finkg/company_kg.h"
#include "finkg/generator.h"

namespace kgm::translate {
namespace {

TEST(CsvEscapeTest, QuotingRules) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvSplitTest, RoundTripsEscapedFields) {
  auto fields = CsvSplitLine("plain,\"a,b\",\"say \"\"hi\"\"\",last");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"plain", "a,b",
                                               "say \"hi\"", "last"}));
  EXPECT_FALSE(CsvSplitLine("\"unterminated").ok());
  auto empty = CsvSplitLine(",,");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->size(), 3u);
}

pg::PropertyGraph SmallInstance() {
  pg::PropertyGraph g;
  pg::NodeId ada = g.AddNode(
      std::vector<std::string>{"PhysicalPerson", "Person"},
      {{"fiscalCode", Value("P1")},
       {"name", Value("ada, the first")},  // embedded comma
       {"surname", Value("rossi")},
       {"gender", Value("female")}});
  pg::NodeId acme = g.AddNode(
      std::vector<std::string>{"Business", "LegalPerson", "Person"},
      {{"fiscalCode", Value("C1")},
       {"businessName", Value("acme")},
       {"legalNature", Value("spa")},
       {"shareholdingCapital", Value(1234.5)}});
  pg::NodeId share = g.AddNode(std::vector<std::string>{"Share"},
                               {{"shareId", Value("S1")},
                                {"percentage", Value(0.6)}});
  g.AddEdge(ada, share, "HOLDS",
            {{"right", Value("ownership")}, {"percentage", Value(0.6)}});
  g.AddEdge(share, acme, "BELONGS_TO");
  return g;
}

TEST(CsvIoTest, ExportProducesHeadersAndRows) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  auto files = ExportCsv(schema, SmallInstance());
  ASSERT_TRUE(files.ok()) << files.status().ToString();
  const std::string& person = files->at("physical_person.csv");
  EXPECT_EQ(person.substr(0, person.find('\n')),
            "fiscal_code,name,surname,gender,birth_date");
  EXPECT_NE(person.find("\"ada, the first\""), std::string::npos);
  const std::string& holds = files->at("holds.csv");
  EXPECT_NE(holds.find("P1,S1,ownership"), std::string::npos);
  // Every node and edge type has a file.
  EXPECT_EQ(files->size(),
            schema.nodes().size() + schema.edges().size());
}

TEST(CsvIoTest, RoundTripPreservesInstance) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph original = SmallInstance();
  auto files = ExportCsv(schema, original);
  ASSERT_TRUE(files.ok());
  auto back = ImportCsv(schema, *files);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_nodes(), original.num_nodes());
  EXPECT_EQ(back->num_edges(), original.num_edges());
  pg::NodeId ada = back->FindNode("PhysicalPerson", "fiscalCode",
                                  Value("P1"));
  ASSERT_NE(ada, pg::kInvalidNode);
  EXPECT_EQ(*back->NodeProperty(ada, "name"), Value("ada, the first"));
  EXPECT_TRUE(back->node(ada).HasLabel("Person"));
  pg::NodeId acme = back->FindNode("Business", "fiscalCode", Value("C1"));
  ASSERT_NE(acme, pg::kInvalidNode);
  EXPECT_EQ(*back->NodeProperty(acme, "shareholdingCapital"),
            Value(1234.5));
  auto holds = back->EdgesWithLabel("HOLDS");
  ASSERT_EQ(holds.size(), 1u);
  EXPECT_EQ(*back->EdgeProperty(holds[0], "percentage"), Value(0.6));
}

TEST(CsvIoTest, GeneratedNetworkRoundTrip) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  finkg::GeneratorConfig config;
  config.num_companies = 30;
  config.num_persons = 50;
  pg::PropertyGraph original =
      finkg::ShareholdingNetwork::Generate(config).ToInstanceGraph();
  auto files = ExportCsv(schema, original);
  ASSERT_TRUE(files.ok());
  auto back = ImportCsv(schema, *files);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_nodes(), original.num_nodes());
  EXPECT_EQ(back->num_edges(), original.num_edges());
  EXPECT_EQ(back->NodesWithLabel("Business").size(), 30u);
  EXPECT_EQ(back->EdgesWithLabel("HOLDS").size(),
            original.EdgesWithLabel("HOLDS").size());
}

TEST(CsvSplitTest, RecordsHonorQuotedNewlines) {
  auto records = CsvSplitRecords("a,b\nc,\"two\nlines\"\nd,e\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[1], "c,\"two\nlines\"");
  auto fields = CsvSplitLine((*records)[1]);
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[1], "two\nlines");
  // CRLF line endings and trailing blank records.
  auto crlf = CsvSplitRecords("a\r\nb\r\n\r\n");
  ASSERT_TRUE(crlf.ok());
  EXPECT_EQ(*crlf, (std::vector<std::string>{"a", "b"}));
  // Escaped quotes do not end the quoted region.
  auto escaped = CsvSplitRecords("\"say \"\"hi\"\"\",x\ny\n");
  ASSERT_TRUE(escaped.ok());
  EXPECT_EQ(escaped->size(), 2u);
  EXPECT_FALSE(CsvSplitRecords("a,\"open\nnever closed").ok());
}

// Regression: an embedded newline used to split the quoted field across
// two import records, failing the round trip.
TEST(CsvIoTest, RoundTripPreservesEmbeddedNewlines) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph g;
  g.AddNode(std::vector<std::string>{"PhysicalPerson", "Person"},
            {{"fiscalCode", Value("P1")},
             {"name", Value("line one\nline two")},
             {"surname", Value("verdi")}});
  auto files = ExportCsv(schema, g);
  ASSERT_TRUE(files.ok());
  auto back = ImportCsv(schema, *files);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  pg::NodeId p = back->FindNode("PhysicalPerson", "fiscalCode", Value("P1"));
  ASSERT_NE(p, pg::kInvalidNode);
  EXPECT_EQ(*back->NodeProperty(p, "name"), Value("line one\nline two"));
}

// Regression: std::stoll/std::stod used to throw on malformed numerics
// (terminating the process) and silently accept trailing garbage.
TEST(CsvIoTest, MalformedNumericFieldsAreErrors) {
  core::SuperSchema schema = finkg::CompanyKgSchema();

  std::map<std::string, std::string> files{
      {"stock_share.csv", "share_id,number_of_stocks\nS9,12abc\n"}};
  Status s = ImportCsv(schema, files).status();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("bad integer"), std::string::npos)
      << s.ToString();

  files = {{"share.csv", "share_id,percentage\nS9,not-a-number\n"}};
  s = ImportCsv(schema, files).status();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("bad double"), std::string::npos)
      << s.ToString();

  files = {{"stock_share.csv",
            "share_id,number_of_stocks\nS9,99999999999999999999999\n"}};
  s = ImportCsv(schema, files).status();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("out of range"), std::string::npos)
      << s.ToString();
}

TEST(CsvIoTest, DanglingEdgeReferenceRejected) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  auto files = ExportCsv(schema, SmallInstance());
  ASSERT_TRUE(files.ok());
  (*files)["holds.csv"] =
      "from_fiscal_code,to_share_id,right,percentage\nZZ,S9,ownership,"
      "0.5\n";
  EXPECT_FALSE(ImportCsv(schema, *files).ok());
}

TEST(CsvIoTest, DuplicateKeyRejected) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  auto files = ExportCsv(schema, SmallInstance());
  ASSERT_TRUE(files.ok());
  (*files)["share.csv"] =
      "share_id,number_of_stocks,percentage\nS1,,0.5\nS1,,0.6\n";
  EXPECT_FALSE(ImportCsv(schema, *files).ok());
}

}  // namespace
}  // namespace kgm::translate
