// Tests of the declarative relational Eliminate phase (Section 5.3): the
// MetaLog program rewrites the Company KG super-schema S (schemaOID 1)
// into S- (schemaOID 2) inside the dictionary, replacing many-to-many
// edges by junction nodes with FK edges and generalizations by IS_A
// foreign-key edges.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/dictionary.h"
#include "finkg/company_kg.h"
#include "metalog/runner.h"
#include "translate/pg_mapping.h"

namespace kgm::translate {
namespace {

struct Eliminated {
  pg::PropertyGraph dict;

  bool InS2(pg::NodeId id) const {
    const Value* oid = dict.NodeProperty(id, "schemaOID");
    return oid != nullptr && oid->is_int() && oid->AsInt() == 2;
  }
  std::string TypeName(pg::NodeId id, const char* link) const {
    for (pg::EdgeId e : dict.OutEdges(id)) {
      if (!dict.HasEdge(e) || dict.edge(e).label != link) continue;
      const Value* name = dict.NodeProperty(dict.edge(e).to, "name");
      if (name != nullptr) return name->AsString();
    }
    return "";
  }
  // S- edges as (typeName, fromType, toType, isFun1).
  std::set<std::tuple<std::string, std::string, std::string, bool>>
  S2Edges() const {
    std::set<std::tuple<std::string, std::string, std::string, bool>> out;
    for (pg::NodeId id : dict.NodesWithLabel(core::kSmEdge)) {
      if (!InS2(id)) continue;
      std::string from;
      std::string to;
      for (pg::EdgeId e : dict.OutEdges(id)) {
        if (!dict.HasEdge(e)) continue;
        if (dict.edge(e).label == core::kSmFrom) {
          from = TypeName(dict.edge(e).to, core::kSmHasNodeType);
        } else if (dict.edge(e).label == core::kSmTo) {
          to = TypeName(dict.edge(e).to, core::kSmHasNodeType);
        }
      }
      const Value* fun1 = dict.NodeProperty(id, "isFun1");
      out.emplace(TypeName(id, core::kSmHasEdgeType), from, to,
                  fun1 != nullptr && fun1->is_bool() && fun1->AsBool());
    }
    return out;
  }
};

Eliminated RunEliminate() {
  Eliminated out;
  core::SuperSchema schema = finkg::CompanyKgSchema();
  schema.set_schema_oid(kSrcOid);
  EXPECT_TRUE(core::StoreSuperSchema(schema, &out.dict).ok());
  const Mapping* mapping = FindMapping("relational", "relation_per_member");
  EXPECT_NE(mapping, nullptr);
  auto run = metalog::RunMetaLogSource(mapping->eliminate, &out.dict);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return out;
}

TEST(RelEliminateTest, MappingIsInRepository) {
  const Mapping* mapping = FindMapping("relational", "relation_per_member");
  ASSERT_NE(mapping, nullptr);
  EXPECT_FALSE(mapping->eliminate.empty());
  // The Copy phase runs natively (DESIGN.md §5).
  EXPECT_TRUE(mapping->copy.empty());
}

TEST(RelEliminateTest, NoGeneralizationsSurviveInS2) {
  Eliminated r = RunEliminate();
  for (pg::NodeId id : r.dict.NodesWithLabel(core::kSmGeneralization)) {
    EXPECT_FALSE(r.InS2(id));
  }
}

TEST(RelEliminateTest, GeneralizationsBecomeIsAEdges) {
  Eliminated r = RunEliminate();
  auto edges = r.S2Edges();
  // One IS_A per (child, parent) pair, functional (FK) and mandatory.
  std::set<std::pair<std::string, std::string>> is_a;
  for (const auto& [type, from, to, fun1] : edges) {
    if (type != "IS_A") continue;
    EXPECT_TRUE(fun1);
    is_a.emplace(from, to);
  }
  EXPECT_EQ(is_a, (std::set<std::pair<std::string, std::string>>{
                      {"PhysicalPerson", "Person"},
                      {"LegalPerson", "Person"},
                      {"Business", "LegalPerson"},
                      {"NonBusiness", "LegalPerson"},
                      {"PublicListedCompany", "Business"},
                      {"StockShare", "Share"}}));
}

TEST(RelEliminateTest, ManyToManyEdgesBecomeJunctions) {
  Eliminated r = RunEliminate();
  auto edges = r.S2Edges();
  // HOLDS is many-to-many: a junction node typed HOLDS with FK_FROM to
  // Person and FK_TO to Share, both functional.
  EXPECT_TRUE(edges.count({"FK_FROM", "HOLDS", "Person", true}) > 0);
  EXPECT_TRUE(edges.count({"FK_TO", "HOLDS", "Share", true}) > 0);
  // No many-to-many SM_Edge survives in S-.
  core::SuperSchema schema = finkg::CompanyKgSchema();
  for (const auto& [type, from, to, fun1] : edges) {
    if (type == "IS_A" || type == "FK_FROM" || type == "FK_TO") continue;
    const core::EdgeDef* def = schema.FindEdge(type);
    ASSERT_NE(def, nullptr) << type;
    EXPECT_FALSE(def->many_to_many()) << type;
  }
}

TEST(RelEliminateTest, OneToManyEdgesCopied) {
  Eliminated r = RunEliminate();
  auto edges = r.S2Edges();
  // BELONGS_TO (share (1,1) -> business) survives as a functional edge.
  EXPECT_TRUE(edges.count({"BELONGS_TO", "Share", "Business", true}) > 0);
  // RESIDES (person (0,1) -> place) survives too.
  EXPECT_TRUE(edges.count({"RESIDES", "Person", "Place", true}) > 0);
}

TEST(RelEliminateTest, JunctionCarriesEdgeAttributes) {
  Eliminated r = RunEliminate();
  // The HOLDS junction node carries right and percentage attributes.
  bool found = false;
  for (pg::NodeId id : r.dict.NodesWithLabel(core::kSmNode)) {
    if (!r.InS2(id)) continue;
    if (r.TypeName(id, core::kSmHasNodeType) != "HOLDS") continue;
    found = true;
    std::set<std::string> attrs;
    for (pg::EdgeId e : r.dict.OutEdges(id)) {
      if (!r.dict.HasEdge(e) ||
          r.dict.edge(e).label != core::kSmHasNodeProperty) {
        continue;
      }
      const Value* name = r.dict.NodeProperty(r.dict.edge(e).to, "name");
      if (name != nullptr) attrs.insert(name->AsString());
    }
    EXPECT_EQ(attrs, (std::set<std::string>{"right", "percentage"}));
  }
  EXPECT_TRUE(found);
}

TEST(RelEliminateTest, EveryNodeKeepsItsSingleType) {
  Eliminated r = RunEliminate();
  core::SuperSchema schema = finkg::CompanyKgSchema();
  size_t junctions = 0;
  for (const auto& e : schema.edges()) {
    if (e.many_to_many()) ++junctions;
  }
  size_t s2_nodes = 0;
  for (pg::NodeId id : r.dict.NodesWithLabel(core::kSmNode)) {
    if (r.InS2(id)) ++s2_nodes;
  }
  EXPECT_EQ(s2_nodes, schema.nodes().size() + junctions);
}

}  // namespace
}  // namespace kgm::translate
