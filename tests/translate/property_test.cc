// Property-based tests of SSST over randomized super-schemas: the
// declarative MetaLog pipeline must agree with the native oracle, and the
// relational translation must satisfy its structural invariants.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "base/rng.h"
#include "base/strings.h"
#include "translate/ssst.h"

namespace kgm::translate {
namespace {

// A random valid super-schema: a generalization forest with random
// attributes and random edges of random cardinalities.
core::SuperSchema RandomSchema(uint64_t seed) {
  Rng rng(seed);
  core::SuperSchema s("random_" + std::to_string(seed));
  size_t n = 3 + rng.NextBelow(8);
  std::vector<std::string> names;
  const core::AttrType kTypes[] = {
      core::AttrType::kString, core::AttrType::kInt,
      core::AttrType::kDouble, core::AttrType::kBool, core::AttrType::kDate};
  for (size_t i = 0; i < n; ++i) {
    std::string name = "T" + std::to_string(i);
    std::vector<core::AttributeDef> attrs;
    // Roots need an identifier.
    bool is_root = i == 0 || rng.NextBool(0.4);
    if (is_root) {
      attrs.push_back(core::IdAttr("id" + std::to_string(i)));
    }
    size_t extra = rng.NextBelow(4);
    for (size_t a = 0; a < extra; ++a) {
      core::AttributeDef attr =
          rng.NextBool(0.5)
              ? core::Attr("a" + std::to_string(i) + "_" + std::to_string(a),
                           kTypes[rng.NextBelow(5)])
              : core::OptAttr(
                    "a" + std::to_string(i) + "_" + std::to_string(a),
                    kTypes[rng.NextBelow(5)]);
      if (rng.NextBool(0.2)) {
        attr.modifiers.push_back(core::AttributeModifier::Unique());
      }
      attrs.push_back(std::move(attr));
    }
    s.AddNode(name, std::move(attrs));
    if (!is_root && !names.empty()) {
      // Attach under a random earlier node.
      s.AddGeneralization(names[rng.NextBelow(names.size())], {name},
                          rng.NextBool(0.5), rng.NextBool(0.5));
    }
    names.push_back(name);
  }
  size_t edges = rng.NextBelow(n);
  for (size_t e = 0; e < edges; ++e) {
    auto card = [&rng]() {
      switch (rng.NextBelow(4)) {
        case 0:
          return core::Cardinality::ZeroOrOne();
        case 1:
          return core::Cardinality::ExactlyOne();
        case 2:
          return core::Cardinality::OneOrMore();
        default:
          return core::Cardinality::ZeroOrMore();
      }
    };
    core::EdgeDef& edge =
        s.AddEdge("E" + std::to_string(e), names[rng.NextBelow(n)],
                  names[rng.NextBelow(n)], card(), card());
    if (rng.NextBool(0.5)) {
      edge.attributes.push_back(
          core::Attr("w" + std::to_string(e), core::AttrType::kDouble));
    }
    if (rng.NextBool(0.2)) edge.intensional = true;
  }
  return s;
}

class SsstProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SsstProperty, DeclarativeEqualsNative) {
  core::SuperSchema schema = RandomSchema(GetParam());
  ASSERT_TRUE(schema.Validate().ok()) << schema.Summary();
  auto native = TranslateToPgNative(schema);
  ASSERT_TRUE(native.ok()) << native.status().ToString();
  auto declarative = TranslateToPgDeclarative(schema);
  ASSERT_TRUE(declarative.ok()) << declarative.status().ToString();
  EXPECT_EQ(declarative->ToString(), native->ToString())
      << "schema: " << schema.Summary();
}

TEST_P(SsstProperty, RelationalInvariants) {
  core::SuperSchema schema = RandomSchema(GetParam());
  ASSERT_TRUE(schema.Validate().ok());
  auto tables_result = TranslateToRelationalNative(schema);
  ASSERT_TRUE(tables_result.ok()) << tables_result.status().ToString();
  const auto& tables = *tables_result;

  std::map<std::string, const rel::TableSchema*> by_name;
  for (const auto& t : tables) by_name[t.name] = &t;

  // One relation per node type plus one per many-to-many edge.
  size_t expected = schema.nodes().size();
  for (const auto& e : schema.edges()) {
    if (e.many_to_many()) ++expected;
  }
  EXPECT_EQ(tables.size(), expected);

  for (const auto& t : tables) {
    // Every primary-key column exists and is NOT NULL.
    for (const auto& pk : t.primary_key) {
      int idx = t.ColumnIndex(pk);
      ASSERT_GE(idx, 0) << t.name << "." << pk;
      EXPECT_FALSE(t.columns[idx].nullable) << t.name << "." << pk;
    }
    // Every foreign key references an existing table and existing columns
    // on both sides, with matching arity.
    for (const auto& fk : t.foreign_keys) {
      ASSERT_EQ(fk.columns.size(), fk.ref_columns.size()) << t.name;
      auto target = by_name.find(fk.ref_table);
      ASSERT_NE(target, by_name.end()) << t.name << " -> " << fk.ref_table;
      for (const auto& col : fk.columns) {
        EXPECT_GE(t.ColumnIndex(col), 0) << t.name << "." << col;
      }
      for (const auto& col : fk.ref_columns) {
        EXPECT_GE(target->second->ColumnIndex(col), 0)
            << fk.ref_table << "." << col;
      }
      // The referenced columns are the target's primary key.
      EXPECT_EQ(fk.ref_columns, target->second->primary_key) << t.name;
    }
  }

  // The whole schema loads into the engine (no duplicate names etc.).
  rel::Database db;
  for (const auto& t : tables) {
    ASSERT_TRUE(db.CreateTable(t).ok()) << t.name;
  }
  // DDL renders without crashing and mentions every table.
  std::string ddl = rel::RenderSqlDdl(tables);
  for (const auto& t : tables) {
    EXPECT_NE(ddl.find("CREATE TABLE " + t.name), std::string::npos);
  }
}

TEST_P(SsstProperty, PgSchemaInvariants) {
  core::SuperSchema schema = RandomSchema(GetParam());
  ASSERT_TRUE(schema.Validate().ok());
  auto pg = TranslateToPgNative(schema);
  ASSERT_TRUE(pg.ok());
  // Every node type's labels are its name plus its ancestors, and its
  // properties are exactly its effective attributes.
  for (const auto& nt : pg->node_types) {
    const std::string& name = nt.primary_label();
    std::set<std::string> expected_labels{name};
    for (const auto& a : schema.AncestorsOf(name)) {
      expected_labels.insert(a);
    }
    EXPECT_EQ(std::set<std::string>(nt.labels.begin(), nt.labels.end()),
              expected_labels);
    EXPECT_EQ(nt.properties.size(),
              schema.EffectiveAttributes(name).size());
  }
  // Relationship replication count: |desc+self(from)| * |desc+self(to)|.
  for (const auto& e : schema.edges()) {
    size_t froms = 1 + schema.DescendantsOf(e.from).size();
    size_t tos = 1 + schema.DescendantsOf(e.to).size();
    EXPECT_EQ(pg->FindRelationships(e.name).size(), froms * tos) << e.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsstProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace kgm::translate
