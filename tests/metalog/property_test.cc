// Property-based tests of MetaLog path patterns against graph-traversal
// oracles on randomized property graphs.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "base/rng.h"
#include "metalog/runner.h"

namespace kgm::metalog {
namespace {

using Edge = std::pair<pg::NodeId, pg::NodeId>;

struct RandomGraph {
  pg::PropertyGraph graph;
  std::vector<pg::NodeId> nodes;
  std::set<Edge> a_edges;
  std::set<Edge> b_edges;
};

RandomGraph MakeGraph(size_t n, size_t edges_per_label, uint64_t seed) {
  RandomGraph out;
  Rng rng(seed);
  edges_per_label = std::min(edges_per_label, n * n / 2);
  for (size_t i = 0; i < n; ++i) {
    out.nodes.push_back(out.graph.AddNode(
        "N", {{"k", Value(static_cast<int64_t>(i))}}));
  }
  while (out.a_edges.size() < edges_per_label) {
    Edge e{out.nodes[rng.NextBelow(n)], out.nodes[rng.NextBelow(n)]};
    if (out.a_edges.insert(e).second) {
      out.graph.AddEdge(e.first, e.second, "A");
    }
  }
  while (out.b_edges.size() < edges_per_label) {
    Edge e{out.nodes[rng.NextBelow(n)], out.nodes[rng.NextBelow(n)]};
    if (out.b_edges.insert(e).second) {
      out.graph.AddEdge(e.first, e.second, "B");
    }
  }
  return out;
}

std::set<Edge> DerivedEdges(const pg::PropertyGraph& g,
                            const std::string& label) {
  std::set<Edge> out;
  for (pg::EdgeId e : g.EdgesWithLabel(label)) {
    out.emplace(g.edge(e).from, g.edge(e).to);
  }
  return out;
}

// Reflexive-transitive closure oracle over a relation.
std::set<Edge> StarOracle(const std::vector<pg::NodeId>& nodes,
                          const std::set<Edge>& step) {
  std::set<Edge> closure;
  for (pg::NodeId v : nodes) closure.emplace(v, v);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Edge& xy : closure) {
      for (const Edge& yz : step) {
        if (yz.first != xy.second) continue;
        if (closure.emplace(xy.first, yz.second).second) changed = true;
      }
    }
  }
  return closure;
}

class PathProperty
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {
};

TEST_P(PathProperty, StarMatchesReflexiveClosure) {
  auto [n, m, seed] = GetParam();
  RandomGraph rg = MakeGraph(n, m, seed);
  auto result = RunMetaLogSource(
      "(x: N) [: A]* (y: N) -> (x)[: REACH](y).", &rg.graph);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(DerivedEdges(rg.graph, "REACH"),
            StarOracle(rg.nodes, rg.a_edges));
}

TEST_P(PathProperty, PlusMatchesStrictClosure) {
  auto [n, m, seed] = GetParam();
  RandomGraph rg = MakeGraph(n, m, seed);
  auto result = RunMetaLogSource(
      "(x: N) [: A]+ (y: N) -> (x)[: REACH](y).", &rg.graph);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Strict closure: star oracle minus reflexive pairs not reachable in
  // >= 1 step.
  std::set<Edge> star = StarOracle(rg.nodes, rg.a_edges);
  std::set<Edge> oracle;
  for (const Edge& xy : star) {
    if (xy.first != xy.second) {
      oracle.insert(xy);
      continue;
    }
    // Self-pair only if on a cycle: one A-step to z, then z ->* x.
    for (const Edge& step : rg.a_edges) {
      if (step.first == xy.first &&
          star.count({step.second, xy.first}) > 0) {
        oracle.insert(xy);
        break;
      }
    }
  }
  EXPECT_EQ(DerivedEdges(rg.graph, "REACH"), oracle);
}

TEST_P(PathProperty, AlternationMatchesUnion) {
  auto [n, m, seed] = GetParam();
  RandomGraph rg = MakeGraph(n, m, seed);
  auto result = RunMetaLogSource(
      "(x: N) ([: A] | [: B]) (y: N) -> (x)[: EITHER](y).", &rg.graph);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::set<Edge> oracle = rg.a_edges;
  oracle.insert(rg.b_edges.begin(), rg.b_edges.end());
  EXPECT_EQ(DerivedEdges(rg.graph, "EITHER"), oracle);
}

TEST_P(PathProperty, ConcatenationMatchesJoin) {
  auto [n, m, seed] = GetParam();
  RandomGraph rg = MakeGraph(n, m, seed);
  auto result = RunMetaLogSource(
      "(x: N) [: A] / [: B] (y: N) -> (x)[: AB](y).", &rg.graph);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::set<Edge> oracle;
  for (const Edge& a : rg.a_edges) {
    for (const Edge& b : rg.b_edges) {
      if (a.second == b.first) oracle.emplace(a.first, b.second);
    }
  }
  EXPECT_EQ(DerivedEdges(rg.graph, "AB"), oracle);
}

TEST_P(PathProperty, InverseMatchesReversedEdges) {
  auto [n, m, seed] = GetParam();
  RandomGraph rg = MakeGraph(n, m, seed);
  auto result = RunMetaLogSource(
      "(x: N) [: A]- (y: N) -> (x)[: REV](y).", &rg.graph);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::set<Edge> oracle;
  for (const Edge& a : rg.a_edges) oracle.emplace(a.second, a.first);
  EXPECT_EQ(DerivedEdges(rg.graph, "REV"), oracle);
}

TEST_P(PathProperty, StarOfInverseEqualsInverseOfStar) {
  auto [n, m, seed] = GetParam();
  RandomGraph rg1 = MakeGraph(n, m, seed);
  RandomGraph rg2 = MakeGraph(n, m, seed);  // identical by construction
  ASSERT_TRUE(RunMetaLogSource(
      "(x: N) ([: A]-)* (y: N) -> (x)[: R1](y).", &rg1.graph).ok());
  ASSERT_TRUE(RunMetaLogSource(
      "(x: N) [: A]* (y: N) -> (x)[: R2](y).", &rg2.graph).ok());
  // R1 = inverse of R2.
  std::set<Edge> r1 = DerivedEdges(rg1.graph, "R1");
  std::set<Edge> r2 = DerivedEdges(rg2.graph, "R2");
  std::set<Edge> r2_inv;
  for (const Edge& e : r2) r2_inv.emplace(e.second, e.first);
  EXPECT_EQ(r1, r2_inv);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PathProperty,
    ::testing::Combine(::testing::Values(size_t{5}, size_t{12}, size_t{25}),
                       ::testing::Values(size_t{6}, size_t{20}),
                       ::testing::Values(uint64_t{2}, uint64_t{17},
                                         uint64_t{99})));

}  // namespace
}  // namespace kgm::metalog
