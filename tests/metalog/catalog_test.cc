#include "metalog/catalog.h"

#include <gtest/gtest.h>

#include "metalog/parser.h"

namespace kgm::metalog {
namespace {

pg::PropertyGraph SampleGraph() {
  pg::PropertyGraph g;
  pg::NodeId a = g.AddNode("Person", {{"name", Value("ada")},
                                      {"age", Value(int64_t{36})}});
  pg::NodeId b = g.AddNode("Person", {{"name", Value("bob")}});
  pg::NodeId c = g.AddNode("Company", {{"name", Value("acme")}});
  g.AddEdge(a, c, "OWNS", {{"pct", Value(0.6)}});
  g.AddEdge(b, c, "OWNS", {{"pct", Value(0.4)}});
  g.AddEdge(a, b, "KNOWS");
  return g;
}

TEST(CatalogTest, FromGraphCollectsLabelsAndProps) {
  pg::PropertyGraph g = SampleGraph();
  GraphCatalog catalog = GraphCatalog::FromGraph(g);
  EXPECT_TRUE(catalog.HasNodeLabel("Person"));
  EXPECT_TRUE(catalog.HasNodeLabel("Company"));
  EXPECT_TRUE(catalog.HasEdgeLabel("OWNS"));
  EXPECT_TRUE(catalog.HasEdgeLabel("KNOWS"));
  EXPECT_EQ(catalog.NodeProps("Person"),
            (std::vector<std::string>{"age", "name"}));
  EXPECT_EQ(catalog.EdgeProps("OWNS"), (std::vector<std::string>{"pct"}));
  EXPECT_EQ(catalog.NodeArity("Person"), 3u);
  EXPECT_EQ(catalog.EdgeArity("OWNS"), 4u);
  EXPECT_EQ(catalog.NodePropColumn("Person", "age"), 1);
  EXPECT_EQ(catalog.NodePropColumn("Person", "name"), 2);
  EXPECT_EQ(catalog.EdgePropColumn("OWNS", "pct"), 3);
  EXPECT_EQ(catalog.NodePropColumn("Person", "missing"), -1);
}

TEST(CatalogTest, AbsorbProgramAddsIntensionalLabels) {
  GraphCatalog catalog;
  catalog.AddNodeLabel("Business", {"name"});
  auto program = ParseMetaProgram(
      "(x: Business) -> exists c (x)[c: CONTROLS](x).");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(catalog.AbsorbProgram(*program).ok());
  EXPECT_TRUE(catalog.HasEdgeLabel("CONTROLS"));
  EXPECT_TRUE(catalog.EdgeProps("CONTROLS").empty());
}

TEST(CatalogTest, NodeEdgeLabelClashRejected) {
  GraphCatalog catalog;
  catalog.AddNodeLabel("OWNS");
  auto program =
      ParseMetaProgram("(x: Business)[: OWNS](y: Business) -> (x: Owner).");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(catalog.AbsorbProgram(*program).ok());
}

TEST(EncodeTest, NodesAndEdgesBecomeFacts) {
  pg::PropertyGraph g = SampleGraph();
  GraphCatalog catalog = GraphCatalog::FromGraph(g);
  vadalog::FactDb db = EncodeGraph(g, catalog);
  const vadalog::Relation* person = db.Get("Person");
  ASSERT_NE(person, nullptr);
  EXPECT_EQ(person->size(), 2u);
  EXPECT_EQ(person->arity(), 3u);  // oid, age, name
  // bob has no age: null in the age column.
  bool found_bob = false;
  for (const auto& t : person->tuples()) {
    if (t[2] == Value("bob")) {
      found_bob = true;
      EXPECT_TRUE(t[1].is_null());
    }
  }
  EXPECT_TRUE(found_bob);
  const vadalog::Relation* owns = db.Get("OWNS");
  ASSERT_NE(owns, nullptr);
  EXPECT_EQ(owns->size(), 2u);
  EXPECT_EQ(owns->arity(), 4u);  // oid, from, to, pct
}

TEST(EncodeTest, MultiLabelNodeEncodedUnderEachLabel) {
  pg::PropertyGraph g;
  g.AddNode(std::vector<std::string>{"LegalPerson", "Business"},
            {{"name", Value("acme")}});
  GraphCatalog catalog = GraphCatalog::FromGraph(g);
  vadalog::FactDb db = EncodeGraph(g, catalog);
  EXPECT_EQ(db.Get("LegalPerson")->size(), 1u);
  EXPECT_EQ(db.Get("Business")->size(), 1u);
}

TEST(DecodeTest, NewEdgeMaterialized) {
  pg::PropertyGraph g = SampleGraph();
  GraphCatalog catalog = GraphCatalog::FromGraph(g);
  catalog.AddEdgeLabel("CONTROLS");
  vadalog::FactDb db = EncodeGraph(g, catalog);
  // Derive a CONTROLS edge 0 -> 2 with a fresh Skolem OID.
  Value oid = SkolemTable::Global().Intern("skCtrl", {Value(int64_t{0})});
  db.Add("CONTROLS",
         {oid, Value(int64_t{0}), Value(int64_t{2})});
  size_t edges_before = g.num_edges();
  auto stats = DecodeGraph(db, catalog, &g);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->new_edges, 1u);
  EXPECT_EQ(g.num_edges(), edges_before + 1);
  EXPECT_EQ(g.EdgesWithLabel("CONTROLS").size(), 1u);
}

TEST(DecodeTest, ExistingEdgeNotDuplicated) {
  pg::PropertyGraph g = SampleGraph();
  GraphCatalog catalog = GraphCatalog::FromGraph(g);
  vadalog::FactDb db = EncodeGraph(g, catalog);
  size_t edges_before = g.num_edges();
  auto stats = DecodeGraph(db, catalog, &g);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->new_edges, 0u);
  EXPECT_EQ(stats->new_nodes, 0u);
  EXPECT_EQ(g.num_edges(), edges_before);
}

TEST(DecodeTest, NewNodeAndPropertyMerge) {
  pg::PropertyGraph g = SampleGraph();
  GraphCatalog catalog = GraphCatalog::FromGraph(g);
  catalog.AddNodeLabel("Family", {"familyName"});
  catalog.AddNodeLabel("Company", {"name", "numberOfStakeholders"});
  vadalog::FactDb db = EncodeGraph(g, catalog);
  // New node with Skolem OID.
  Value fam = SkolemTable::Global().Intern("skFam", {Value("rossi")});
  db.Add("Family", {fam, Value("rossi")});
  // New derived property on the existing company node (id 2).
  db.Add("Company",
         {Value(int64_t{2}), Value(), Value(int64_t{2})});
  auto stats = DecodeGraph(db, catalog, &g);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->new_nodes, 1u);
  auto families = g.NodesWithLabel("Family");
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(*g.NodeProperty(families[0], "familyName"), Value("rossi"));
  EXPECT_EQ(*g.NodeProperty(2, "numberOfStakeholders"), Value(int64_t{2}));
  // The original name survives the merge.
  EXPECT_EQ(*g.NodeProperty(2, "name"), Value("acme"));
}

TEST(DecodeTest, UnresolvedEndpointRejected) {
  pg::PropertyGraph g = SampleGraph();
  GraphCatalog catalog = GraphCatalog::FromGraph(g);
  catalog.AddEdgeLabel("CONTROLS");
  vadalog::FactDb db = EncodeGraph(g, catalog);
  db.Add("CONTROLS", {Value(int64_t{999}), Value(int64_t{777}),
                      Value(int64_t{0})});
  auto stats = DecodeGraph(db, catalog, &g);
  EXPECT_FALSE(stats.ok());
}

TEST(CatalogTest, MergeCombinesCatalogs) {
  GraphCatalog a;
  a.AddNodeLabel("Person", {"name"});
  GraphCatalog b;
  b.AddNodeLabel("Person", {"age"});
  b.AddEdgeLabel("KNOWS");
  a.Merge(b);
  EXPECT_EQ(a.NodeProps("Person"), (std::vector<std::string>{"age", "name"}));
  EXPECT_TRUE(a.HasEdgeLabel("KNOWS"));
}

}  // namespace
}  // namespace kgm::metalog
