#include "metalog/parser.h"

#include <gtest/gtest.h>

namespace kgm::metalog {
namespace {

TEST(MetaParserTest, NodeAtomVariants) {
  auto rule = ParseMetaRule("(x: Business) -> (x: Controlled).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ASSERT_EQ(rule->body_patterns.size(), 1u);
  const PgAtom& atom = rule->body_patterns[0].nodes[0];
  EXPECT_FALSE(atom.is_edge);
  EXPECT_EQ(atom.id_var, "x");
  EXPECT_EQ(atom.label, "Business");
}

TEST(MetaParserTest, PropertiesAndConstants) {
  auto rule = ParseMetaRule(
      R"((x: PhysicalPerson; name: n, gender: "male") -> (x: Male).)");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  const PgAtom& atom = rule->body_patterns[0].nodes[0];
  ASSERT_EQ(atom.properties.size(), 2u);
  EXPECT_EQ(atom.properties[0].name, "name");
  EXPECT_TRUE(atom.properties[0].value.is_var());
  EXPECT_EQ(atom.properties[1].value.constant, Value("male"));
}

TEST(MetaParserTest, EdgePattern) {
  auto rule = ParseMetaRule(
      "(x: Business)[o: OWNS; percentage: w](y: Business), w > 0.5"
      " -> (x)[: MAJORITY](y).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  const GraphPattern& p = rule->body_patterns[0];
  ASSERT_EQ(p.nodes.size(), 2u);
  ASSERT_EQ(p.paths.size(), 1u);
  EXPECT_EQ(p.paths[0]->kind, PathKind::kEdge);
  EXPECT_EQ(p.paths[0]->edge.label, "OWNS");
  EXPECT_EQ(p.paths[0]->edge.id_var, "o");
  EXPECT_EQ(rule->conditions.size(), 1u);
}

TEST(MetaParserTest, Example41CompanyControl) {
  auto program = ParseMetaProgram(R"(
    (x: Business) -> exists c (x)[c: CONTROLS](x).
    (x: Business)[: CONTROLS](z: Business)
        [: OWNS; percentage: w](y: Business),
    v = msum(w, <z>), v > 0.5 -> exists c (x)[c: CONTROLS](y).
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->rules.size(), 2u);
  const MetaRule& r2 = program->rules[1];
  ASSERT_EQ(r2.body_patterns.size(), 1u);
  EXPECT_EQ(r2.body_patterns[0].nodes.size(), 3u);
  EXPECT_EQ(r2.body_patterns[0].paths.size(), 2u);
  EXPECT_EQ(r2.aggregates.size(), 1u);
  EXPECT_EQ(r2.existentials.size(), 1u);
}

TEST(MetaParserTest, Example43StarWithInverseAndConcat) {
  auto rule = ParseMetaRule(
      "(x: SM_Node) ([: SM_CHILD]- / [: SM_PARENT])* (y: SM_Node)"
      " -> exists w (x)[w: DESCFROM](y).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  const GraphPattern& p = rule->body_patterns[0];
  ASSERT_EQ(p.paths.size(), 1u);
  const PathPtr& star = p.paths[0];
  EXPECT_EQ(star->kind, PathKind::kStar);
  const PathPtr& concat = star->children[0];
  ASSERT_EQ(concat->kind, PathKind::kConcat);
  ASSERT_EQ(concat->children.size(), 2u);
  EXPECT_TRUE(concat->children[0]->inverse);
  EXPECT_EQ(concat->children[0]->edge.label, "SM_CHILD");
  EXPECT_FALSE(concat->children[1]->inverse);
}

TEST(MetaParserTest, Alternation) {
  auto rule = ParseMetaRule(
      "(x) ([: OWNS] | [: HOLDS] / [: BELONGS_TO]) (y) -> (x)[: LINKED](y).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  const PathPtr& alt = rule->body_patterns[0].paths[0];
  ASSERT_EQ(alt->kind, PathKind::kAlt);
  ASSERT_EQ(alt->children.size(), 2u);
  EXPECT_EQ(alt->children[0]->kind, PathKind::kEdge);
  EXPECT_EQ(alt->children[1]->kind, PathKind::kConcat);
}

TEST(MetaParserTest, PlusOperator) {
  auto rule = ParseMetaRule("(x) [: OWNS]+ (y) -> (x)[: REACHES](y).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->body_patterns[0].paths[0]->kind, PathKind::kPlus);
}

TEST(MetaParserTest, InverseOfGroupDistributes) {
  auto rule = ParseMetaRule(
      "(x) ([: A] / [: B])- (y) -> (x)[: R](y).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  const PathPtr& p = rule->body_patterns[0].paths[0];
  // (A/B)- == B- / A-
  ASSERT_EQ(p->kind, PathKind::kConcat);
  EXPECT_EQ(p->children[0]->edge.label, "B");
  EXPECT_TRUE(p->children[0]->inverse);
  EXPECT_EQ(p->children[1]->edge.label, "A");
  EXPECT_TRUE(p->children[1]->inverse);
}

TEST(MetaParserTest, SpreadOperator) {
  auto rule = ParseMetaRule(
      "(i: I_SM_Node), p = pack(\"a\", 1) -> exists c (c: Business; *p).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->head_patterns[0].nodes[0].spread_var, "p");
}

TEST(MetaParserTest, MultiplePatternsAndScalars) {
  auto rule = ParseMetaRule(
      "(x: Person), (y: Person; age: a), a > 18, b = a + 1"
      " -> (x)[: KNOWS_ADULT](y).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->body_patterns.size(), 2u);
  EXPECT_EQ(rule->conditions.size(), 1u);
  EXPECT_EQ(rule->assignments.size(), 1u);
}

TEST(MetaParserTest, AnonymousAtoms) {
  auto rule = ParseMetaRule("(: Person)[: KNOWS](y: Person) -> (y: Known).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_TRUE(rule->body_patterns[0].nodes[0].id_var.empty());
  EXPECT_EQ(rule->body_patterns[0].nodes[0].label, "Person");
}

TEST(MetaParserTest, Errors) {
  EXPECT_FALSE(ParseMetaRule("(x: Person -> (x: Known).").ok());
  EXPECT_FALSE(ParseMetaRule("(x: Person) -> .").ok());
  EXPECT_FALSE(ParseMetaRule("(x: Person) (y: Q) -> (x: R).").ok());
  EXPECT_FALSE(ParseMetaRule("[x: E] -> (x: R).").ok());
}

TEST(MetaParserTest, RoundTripToString) {
  const char* src =
      "(x: Business)[: CONTROLS](z: Business)"
      "[: OWNS; percentage: w](y: Business), v = msum(w, <z>), v > 0.5 -> "
      "exists c (x)[c: CONTROLS](y).";
  auto rule = ParseMetaRule(src);
  ASSERT_TRUE(rule.ok());
  auto again = ParseMetaRule(rule->ToString());
  ASSERT_TRUE(again.ok()) << rule->ToString() << "\n"
                          << again.status().ToString();
  EXPECT_EQ(again->ToString(), rule->ToString());
}

TEST(MetaParserTest, StarRoundTrip) {
  const char* src =
      "(x: SM_Node)([: SM_CHILD]- / [: SM_PARENT])*(y: SM_Node) -> "
      "exists w (x)[w: DESCFROM](y).";
  auto rule = ParseMetaRule(src);
  ASSERT_TRUE(rule.ok());
  auto again = ParseMetaRule(rule->ToString());
  ASSERT_TRUE(again.ok()) << rule->ToString();
  EXPECT_EQ(again->ToString(), rule->ToString());
}

}  // namespace
}  // namespace kgm::metalog
