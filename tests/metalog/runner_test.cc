#include "metalog/runner.h"

#include <gtest/gtest.h>

namespace kgm::metalog {
namespace {

// Builds the small shareholding graph used throughout: a -> b (60%),
// a -> c (60%), b -> d (30%), c -> d (30%).
pg::PropertyGraph JointControlGraph() {
  pg::PropertyGraph g;
  pg::NodeId a = g.AddNode("Business", {{"name", Value("a")}});
  pg::NodeId b = g.AddNode("Business", {{"name", Value("b")}});
  pg::NodeId c = g.AddNode("Business", {{"name", Value("c")}});
  pg::NodeId d = g.AddNode("Business", {{"name", Value("d")}});
  g.AddEdge(a, b, "OWNS", {{"percentage", Value(0.6)}});
  g.AddEdge(a, c, "OWNS", {{"percentage", Value(0.6)}});
  g.AddEdge(b, d, "OWNS", {{"percentage", Value(0.3)}});
  g.AddEdge(c, d, "OWNS", {{"percentage", Value(0.3)}});
  return g;
}

// The paper's Example 4.1 company-control program, verbatim modulo ASCII.
const char kControl[] = R"(
  (x: Business) -> exists c (x)[c: CONTROLS](x).
  (x: Business)[: CONTROLS](z: Business)
      [: OWNS; percentage: w](y: Business),
  v = msum(w, <z>), v > 0.5 -> exists c (x)[c: CONTROLS](y).
)";

bool HasEdge(const pg::PropertyGraph& g, const std::string& label,
             const std::string& from_name, const std::string& to_name) {
  for (pg::EdgeId e : g.EdgesWithLabel(label)) {
    const pg::Edge& edge = g.edge(e);
    const Value* f = g.NodeProperty(edge.from, "name");
    const Value* t = g.NodeProperty(edge.to, "name");
    if (f != nullptr && t != nullptr && *f == Value(from_name) &&
        *t == Value(to_name)) {
      return true;
    }
  }
  return false;
}

TEST(RunnerTest, Example41CompanyControl) {
  pg::PropertyGraph g = JointControlGraph();
  auto result = RunMetaLogSource(kControl, &g);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Self-control for all 4 + a->b, a->c, a->d (joint).
  EXPECT_EQ(g.EdgesWithLabel("CONTROLS").size(), 7u);
  EXPECT_TRUE(HasEdge(g, "CONTROLS", "a", "b"));
  EXPECT_TRUE(HasEdge(g, "CONTROLS", "a", "c"));
  EXPECT_TRUE(HasEdge(g, "CONTROLS", "a", "d"));
  EXPECT_FALSE(HasEdge(g, "CONTROLS", "b", "d"));
  EXPECT_GT(result->vadalog_rule_count, 0u);
  EXPECT_EQ(result->decode.new_edges, 7u);
}

TEST(RunnerTest, RunIsIdempotent) {
  pg::PropertyGraph g = JointControlGraph();
  ASSERT_TRUE(RunMetaLogSource(kControl, &g).ok());
  size_t edges = g.num_edges();
  // Second run derives the same Skolem OIDs; nothing new materializes.
  auto again = RunMetaLogSource(kControl, &g);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->decode.new_edges, 0u);
  EXPECT_EQ(g.num_edges(), edges);
}

TEST(RunnerTest, Example43DescendantsViaStar) {
  // A little generalization hierarchy in the super-model dictionary style:
  // Person <- LegalPerson <- Business, stored via SM_CHILD / SM_PARENT
  // through generalization nodes.
  pg::PropertyGraph g;
  pg::NodeId person = g.AddNode("SM_Node", {{"name", Value("Person")}});
  pg::NodeId legal = g.AddNode("SM_Node", {{"name", Value("LegalPerson")}});
  pg::NodeId business = g.AddNode("SM_Node", {{"name", Value("Business")}});
  pg::NodeId g1 = g.AddNode("SM_Generalization");
  pg::NodeId g2 = g.AddNode("SM_Generalization");
  g.AddEdge(g1, person, "SM_PARENT");
  g.AddEdge(g1, legal, "SM_CHILD");
  g.AddEdge(g2, legal, "SM_PARENT");
  g.AddEdge(g2, business, "SM_CHILD");

  auto result = RunMetaLogSource(R"(
    (x: SM_Node) ([: SM_CHILD]- / [: SM_PARENT])* (y: SM_Node)
      -> exists w (x)[w: DESCFROM](y).
  )", &g);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Reflexive pairs (3) + business->legal, legal->person, business->person.
  EXPECT_EQ(g.EdgesWithLabel("DESCFROM").size(), 6u);
  auto has = [&](pg::NodeId a, pg::NodeId b) {
    for (pg::EdgeId e : g.EdgesWithLabel("DESCFROM")) {
      if (g.edge(e).from == a && g.edge(e).to == b) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(business, person));
  EXPECT_TRUE(has(business, legal));
  EXPECT_TRUE(has(legal, person));
  EXPECT_TRUE(has(person, person));   // reflexive
  EXPECT_FALSE(has(person, business));
}

TEST(RunnerTest, DerivedNodeProperties) {
  pg::PropertyGraph g;
  pg::NodeId p1 = g.AddNode("Person", {{"name", Value("ada")}});
  pg::NodeId p2 = g.AddNode("Person", {{"name", Value("bob")}});
  pg::NodeId c = g.AddNode("Business", {{"name", Value("acme")}});
  g.AddEdge(p1, c, "HOLDS", {{"percentage", Value(0.7)}});
  g.AddEdge(p2, c, "HOLDS", {{"percentage", Value(0.3)}});

  MetaRunOptions options;
  options.extra_catalog.AddNodeLabel("Business", {"numberOfStakeholders"});
  auto result = RunMetaLogSource(R"(
    (p: Person)[: HOLDS](b: Business), n = count(<p>)
      -> (b: Business; numberOfStakeholders: n).
  )", &g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Value* n = g.NodeProperty(c, "numberOfStakeholders");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(*n, Value(int64_t{2}));
}

TEST(RunnerTest, DerivedNodesViaExistential) {
  // Every person belongs to a family named after their surname; persons who
  // share a surname share the family node (linker Skolem semantics comes
  // from the deterministic frontier Skolemization over the surname).
  pg::PropertyGraph g;
  g.AddNode("Person", {{"surname", Value("rossi")}});
  g.AddNode("Person", {{"surname", Value("rossi")}});
  g.AddNode("Person", {{"surname", Value("verdi")}});

  MetaRunOptions options;
  options.extra_catalog.AddNodeLabel("Family", {"familyName"});
  options.extra_catalog.AddEdgeLabel("BELONGS_TO_FAMILY");
  auto result = RunMetaLogSource(R"(
    (p: Person; surname: s)
      -> exists f = skFam(s) (p)[: BELONGS_TO_FAMILY](f: Family; familyName: s).
  )", &g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(g.NodesWithLabel("Family").size(), 2u);
  EXPECT_EQ(g.EdgesWithLabel("BELONGS_TO_FAMILY").size(), 3u);
}

TEST(RunnerTest, AlternationOverTwoEdgeLabels) {
  pg::PropertyGraph g;
  pg::NodeId a = g.AddNode("Person", {{"name", Value("a")}});
  pg::NodeId b = g.AddNode("Person", {{"name", Value("b")}});
  pg::NodeId c = g.AddNode("Person", {{"name", Value("c")}});
  g.AddEdge(a, b, "OWNS");
  g.AddEdge(b, c, "HOLDS");
  auto result = RunMetaLogSource(R"(
    (x: Person) ([: OWNS] | [: HOLDS]) (y: Person)
      -> (x)[: LINKED](y).
  )", &g);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(g.EdgesWithLabel("LINKED").size(), 2u);
}

}  // namespace
}  // namespace kgm::metalog
