#include "metalog/mtv.h"

#include <gtest/gtest.h>

#include "metalog/parser.h"
#include "vadalog/analysis.h"

namespace kgm::metalog {
namespace {

GraphCatalog CompanyCatalog() {
  GraphCatalog c;
  c.AddNodeLabel("Business", {"name"});
  c.AddEdgeLabel("OWNS", {"percentage"});
  c.AddEdgeLabel("CONTROLS");
  c.AddEdgeLabel("MAJORITY");
  return c;
}

MtvResult TranslateOrDie(const std::string& src, const GraphCatalog& catalog,
                         MtvOptions options = {}) {
  auto program = ParseMetaProgram(src);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto result = TranslateMetaProgram(*program, catalog, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(MtvTest, SimpleEdgePattern) {
  MtvResult r = TranslateOrDie(
      "(x: Business)[o: OWNS; percentage: w](y: Business), w > 0.5"
      " -> (x)[: MAJORITY](y).",
      CompanyCatalog());
  ASSERT_EQ(r.program.rules.size(), 1u);
  const vadalog::Rule& rule = r.program.rules[0];
  // Body: Business(x, _), OWNS(o, x, y, w), Business(y, _).
  ASSERT_EQ(rule.body.size(), 3u);
  EXPECT_EQ(rule.body[0].atom.ToString(), "Business(x,_)");
  EXPECT_EQ(rule.body[1].atom.predicate, "OWNS");
  EXPECT_EQ(rule.body[1].atom.args.size(), 4u);
  EXPECT_EQ(rule.body[1].atom.args[0].var, "o");
  EXPECT_EQ(rule.body[1].atom.args[1].var, "x");
  EXPECT_EQ(rule.body[1].atom.args[2].var, "y");
  EXPECT_EQ(rule.body[1].atom.args[3].var, "w");
  // Head: MAJORITY edge with an auto-existential OID.
  ASSERT_EQ(rule.head.size(), 1u);
  EXPECT_EQ(rule.head[0].predicate, "MAJORITY");
  ASSERT_EQ(rule.existentials.size(), 1u);
}

TEST(MtvTest, InverseEdgeSwapsEndpoints) {
  MtvResult r = TranslateOrDie(
      "(x: Business)[: OWNS]-(y: Business) -> (x)[: MAJORITY](y).",
      CompanyCatalog());
  const vadalog::Rule& rule = r.program.rules[0];
  // OWNS(_, y, x, _): traversed backwards.
  EXPECT_EQ(rule.body[1].atom.args[1].var, "y");
  EXPECT_EQ(rule.body[1].atom.args[2].var, "x");
}

TEST(MtvTest, ConcatenationIntroducesFreshIntermediates) {
  MtvResult r = TranslateOrDie(
      "(x: Business) [: OWNS] / [: OWNS] (y: Business)"
      " -> (x)[: MAJORITY](y).",
      CompanyCatalog());
  const vadalog::Rule& rule = r.program.rules[0];
  // Business(x), OWNS(x, m), OWNS(m, y), Business(y).
  ASSERT_EQ(rule.body.size(), 4u);
  const std::string mid = rule.body[1].atom.args[2].var;
  EXPECT_EQ(rule.body[2].atom.args[1].var, mid);
  EXPECT_NE(mid, "x");
  EXPECT_NE(mid, "y");
}

TEST(MtvTest, AlternationCreatesHelperPredicate) {
  GraphCatalog catalog = CompanyCatalog();
  catalog.AddEdgeLabel("HOLDS");
  MtvResult r = TranslateOrDie(
      "(x: Business) ([: OWNS] | [: HOLDS]) (y: Business)"
      " -> (x)[: MAJORITY](y).",
      catalog);
  ASSERT_EQ(r.helper_predicates.size(), 1u);
  const std::string& alt = r.helper_predicates[0];
  // Two branch rules plus the main rule.
  ASSERT_EQ(r.program.rules.size(), 3u);
  int branch_rules = 0;
  for (const auto& rule : r.program.rules) {
    if (!rule.head.empty() && rule.head[0].predicate == alt) ++branch_rules;
  }
  EXPECT_EQ(branch_rules, 2);
}

TEST(MtvTest, PlusCreatesTransitiveClosure) {
  MtvResult r = TranslateOrDie(
      "(x: Business) [: OWNS]+ (y: Business) -> (x)[: MAJORITY](y).",
      CompanyCatalog());
  ASSERT_EQ(r.helper_predicates.size(), 1u);
  // base + step + main = 3 rules.
  EXPECT_EQ(r.program.rules.size(), 3u);
  // The generated program must be piecewise linear (Section 4).
  EXPECT_TRUE(vadalog::IsPiecewiseLinear(r.program));
}

TEST(MtvTest, ReflexiveStarExpandsToTwoVariants) {
  MtvResult r = TranslateOrDie(
      "(x: Business) [: OWNS]* (y: Business) -> (x)[: MAJORITY](y).",
      CompanyCatalog());
  // closure base + step + zero-variant + closure-variant = 4 rules.
  EXPECT_EQ(r.program.rules.size(), 4u);
  // One of the main variants must unify x and y (no closure literal).
  bool found_zero = false;
  for (const auto& rule : r.program.rules) {
    if (rule.head.empty() || rule.head[0].predicate != "MAJORITY") continue;
    bool has_closure = false;
    for (const auto& lit : rule.body) {
      if (lit.atom.predicate.find("_closure") != std::string::npos) {
        has_closure = true;
      }
    }
    if (!has_closure) {
      found_zero = true;
      // Endpoints unified: head from == head to.
      EXPECT_EQ(rule.head[0].args[1].var, rule.head[0].args[2].var);
    }
  }
  EXPECT_TRUE(found_zero);
}

TEST(MtvTest, NonReflexiveStarMatchesPaperTranslation) {
  MtvOptions options;
  options.reflexive_star = false;
  MtvResult r = TranslateOrDie(
      "(x: Business) [: OWNS]* (y: Business) -> (x)[: MAJORITY](y).",
      CompanyCatalog(), options);
  // Example 4.4 shape: base + step + single main rule.
  EXPECT_EQ(r.program.rules.size(), 3u);
}

TEST(MtvTest, SharedVariableBecomesClosureParameter) {
  GraphCatalog catalog;
  catalog.AddNodeLabel("SM_Node", {"schemaOID"});
  catalog.AddEdgeLabel("SM_CHILD", {"schemaOID"});
  catalog.AddEdgeLabel("SM_PARENT", {"schemaOID"});
  catalog.AddEdgeLabel("DESCFROM");
  MtvResult r = TranslateOrDie(
      "(x: SM_Node; schemaOID: s), s == 123,"
      " (x) ([: SM_CHILD; schemaOID: s]- / [: SM_PARENT; schemaOID: s])+"
      " (y: SM_Node; schemaOID: s)"
      " -> exists w (x)[w: DESCFROM](y).",
      catalog);
  ASSERT_EQ(r.helper_predicates.size(), 1u);
  // The closure predicate carries s as a parameter column: arity 3.
  for (const auto& rule : r.program.rules) {
    for (const auto& lit : rule.body) {
      if (lit.atom.predicate == r.helper_predicates[0]) {
        EXPECT_EQ(lit.atom.args.size(), 3u);
      }
    }
  }
}

TEST(MtvTest, HeadNodePropertyDefaultsToNull) {
  GraphCatalog catalog;
  catalog.AddNodeLabel("Business", {"name", "numberOfStakeholders"});
  MtvResult r = TranslateOrDie(
      "(x: Business; name: n) -> (x: Business; numberOfStakeholders: 0).",
      catalog);
  const vadalog::Rule& rule = r.program.rules[0];
  ASSERT_EQ(rule.head.size(), 1u);
  // Business(x, null, 0): name unmentioned -> null constant.
  EXPECT_EQ(rule.head[0].args.size(), 3u);
  EXPECT_TRUE(rule.head[0].args[1].constant.is_null());
  EXPECT_FALSE(rule.head[0].args[1].is_var());
}

TEST(MtvTest, SpreadExpandsToGetAssignments) {
  GraphCatalog catalog;
  catalog.AddNodeLabel("I_SM_Node", {"instanceOID"});
  catalog.AddNodeLabel("Business", {"legalName", "year"});
  MtvResult r = TranslateOrDie(
      "(i: I_SM_Node), p = pack(\"k\", 1)"
      " -> exists c (c: Business; *p).",
      catalog);
  const vadalog::Rule& rule = r.program.rules[0];
  // Two get() assignments (legalName, year) appended by the spread.
  ASSERT_EQ(rule.assignments.size(), 2u);
  EXPECT_NE(rule.assignments[0].expr->ToString().find("get"),
            std::string::npos);
}

TEST(MtvTest, UnknownLabelRejected) {
  GraphCatalog catalog;
  auto program = ParseMetaProgram("(x: Nope) -> (x: Nope).");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(TranslateMetaProgram(*program, catalog).ok());
}

TEST(MtvTest, UnknownPropertyRejected) {
  auto program =
      ParseMetaProgram("(x: Business; bogus: b) -> (x)[: CONTROLS](x).");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(TranslateMetaProgram(*program, CompanyCatalog()).ok());
}

TEST(MtvTest, UnlabeledEdgeRejected) {
  auto program = ParseMetaProgram("(x: Business)[e](y: Business) -> "
                                  "(x)[: CONTROLS](y).");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(TranslateMetaProgram(*program, CompanyCatalog()).ok());
}

TEST(MtvTest, InputBindingsFollowExample44) {
  GraphCatalog catalog;
  catalog.AddNodeLabel("SM_Node", {"name"});
  catalog.AddEdgeLabel("SM_CHILD");
  catalog.AddEdgeLabel("SM_PARENT");
  catalog.AddEdgeLabel("DESCFROM");
  auto program = ParseMetaProgram(
      "(x: SM_Node) ([: SM_CHILD]- / [: SM_PARENT])* (y: SM_Node)"
      " -> exists w (x)[w: DESCFROM](y).").value();
  std::string cypher =
      GenerateInputBindings(program, catalog, BindingLanguage::kCypher);
  // One @input per body label, with a Cypher extraction query
  // (Example 4.4's annotations).
  EXPECT_NE(cypher.find("@input(SM_Node, \"MATCH (n:SM_Node) RETURN "
                        "id(n), n.name\")."),
            std::string::npos);
  EXPECT_NE(cypher.find("@input(SM_PARENT, \"MATCH (x)-[e:SM_PARENT]->(y) "
                        "RETURN id(e), id(x), id(y)\")."),
            std::string::npos);
  // No binding for the derived (head-only) DESCFROM label.
  EXPECT_EQ(cypher.find("DESCFROM"), std::string::npos);
  std::string sql =
      GenerateInputBindings(program, catalog, BindingLanguage::kSql);
  EXPECT_NE(sql.find("SELECT oid, name FROM SM_Node"), std::string::npos);
  EXPECT_NE(sql.find("SELECT oid, from_oid, to_oid FROM SM_CHILD"),
            std::string::npos);
}

TEST(MtvTest, Example41TranslatesToWardedProgram) {
  MtvResult r = TranslateOrDie(R"(
    (x: Business) -> exists c (x)[c: CONTROLS](x).
    (x: Business)[: CONTROLS](z: Business)
        [: OWNS; percentage: w](y: Business),
    v = msum(w, <z>), v > 0.5 -> exists c (x)[c: CONTROLS](y).
  )", CompanyCatalog());
  EXPECT_EQ(r.program.rules.size(), 2u);
  auto report = vadalog::CheckWardedness(r.program);
  EXPECT_TRUE(report.warded) << [&] {
    std::string s;
    for (const auto& v : report.violations) s += v + "\n";
    return s;
  }();
}

}  // namespace
}  // namespace kgm::metalog
