// Static guarantees for the Company KG's intensional programs: each parses,
// compiles through MTV, and lands in the decidable fragments the paper
// requires (wardedness; piecewise linearity where closures are involved).

#include <gtest/gtest.h>

#include "finkg/company_kg.h"
#include "instance/pipeline.h"
#include "metalog/mtv.h"
#include "metalog/parser.h"
#include "vadalog/analysis.h"
#include "vadalog/engine.h"

namespace kgm::finkg {
namespace {

struct ProgramCase {
  const char* name;
  const char* source;
};

class ProgramSuite : public ::testing::TestWithParam<ProgramCase> {};

TEST_P(ProgramSuite, ParsesAndTranslates) {
  auto program = metalog::ParseMetaProgram(GetParam().source);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_FALSE(program->rules.empty());

  metalog::GraphCatalog catalog =
      instance::SchemaCatalog(CompanyKgSchema());
  ASSERT_TRUE(catalog.AbsorbProgram(*program).ok());
  auto mtv = metalog::TranslateMetaProgram(*program, catalog);
  ASSERT_TRUE(mtv.ok()) << mtv.status().ToString();
  EXPECT_FALSE(mtv->program.rules.empty());
}

TEST_P(ProgramSuite, CompiledProgramIsWarded) {
  auto program = metalog::ParseMetaProgram(GetParam().source).value();
  metalog::GraphCatalog catalog =
      instance::SchemaCatalog(CompanyKgSchema());
  ASSERT_TRUE(catalog.AbsorbProgram(program).ok());
  auto mtv = metalog::TranslateMetaProgram(program, catalog).value();
  auto report = vadalog::CheckWardedness(mtv.program);
  std::string violations;
  for (const auto& v : report.violations) violations += v + "\n";
  EXPECT_TRUE(report.warded) << violations;
}

TEST_P(ProgramSuite, CompiledProgramPassesEngineValidation) {
  auto program = metalog::ParseMetaProgram(GetParam().source).value();
  metalog::GraphCatalog catalog =
      instance::SchemaCatalog(CompanyKgSchema());
  ASSERT_TRUE(catalog.AbsorbProgram(program).ok());
  auto mtv = metalog::TranslateMetaProgram(program, catalog).value();
  vadalog::Engine engine(std::move(mtv.program));
  EXPECT_TRUE(engine.status().ok()) << engine.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    CompanyKg, ProgramSuite,
    ::testing::Values(ProgramCase{"owns", kOwnsProgram},
                      ProgramCase{"control", kControlProgram},
                      ProgramCase{"stakeholders", kStakeholdersProgram},
                      ProgramCase{"family", kFamilyProgram},
                      ProgramCase{"close_links", kCloseLinksProgram}),
    [](const ::testing::TestParamInfo<ProgramCase>& info) {
      return info.param.name;
    });

TEST(ProgramFragmentTest, ControlIsPiecewiseLinear) {
  auto program = metalog::ParseMetaProgram(kControlProgram).value();
  metalog::GraphCatalog catalog =
      instance::SchemaCatalog(CompanyKgSchema());
  ASSERT_TRUE(catalog.AbsorbProgram(program).ok());
  auto mtv = metalog::TranslateMetaProgram(program, catalog).value();
  EXPECT_TRUE(vadalog::IsPiecewiseLinear(mtv.program));
  EXPECT_TRUE(vadalog::IsRecursive(mtv.program));
}

}  // namespace
}  // namespace kgm::finkg
