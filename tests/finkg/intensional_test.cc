// End-to-end tests of the Company KG intensional components (Sections 2.1,
// 3.3, 4): OWNS, CONTROLS, numberOfStakeholders, families, close links —
// each a MetaLog program run by MTV + the Vadalog engine over the
// extensional property graph.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "metalog/runner.h"

namespace kgm::finkg {
namespace {

pg::NodeId AddBusiness(pg::PropertyGraph* g, const std::string& code) {
  return g->AddNode(
      std::vector<std::string>{"Business", "LegalPerson", "Person"},
      {{"fiscalCode", Value(code)}});
}

pg::NodeId AddPerson(pg::PropertyGraph* g, const std::string& code,
                     const std::string& surname) {
  return g->AddNode(std::vector<std::string>{"PhysicalPerson", "Person"},
                    {{"fiscalCode", Value(code)},
                     {"surname", Value(surname)}});
}

pg::NodeId AddShare(pg::PropertyGraph* g, const std::string& id, double pct,
                    pg::NodeId holder, pg::NodeId company,
                    const char* right = "ownership") {
  pg::NodeId share = g->AddNode(std::vector<std::string>{"Share"},
                                {{"shareId", Value(id)},
                                 {"percentage", Value(pct)}});
  g->AddEdge(holder, share, "HOLDS",
             {{"right", Value(right)}, {"percentage", Value(pct)}});
  g->AddEdge(share, company, "BELONGS_TO");
  return share;
}

bool HasEdgeBetween(const pg::PropertyGraph& g, const std::string& label,
                    pg::NodeId from, pg::NodeId to) {
  for (pg::EdgeId e : g.EdgesWithLabel(label)) {
    if (g.edge(e).from == from && g.edge(e).to == to) return true;
  }
  return false;
}

TEST(OwnsTest, AggregatesOwnershipRightsOnly) {
  pg::PropertyGraph g;
  pg::NodeId ada = AddPerson(&g, "P1", "rossi");
  pg::NodeId acme = AddBusiness(&g, "C1");
  AddShare(&g, "s1", 0.30, ada, acme);
  AddShare(&g, "s2", 0.15, ada, acme);
  AddShare(&g, "s3", 0.20, ada, acme, "usufruct");  // not ownership
  auto result = metalog::RunMetaLogSource(kOwnsProgram, &g);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto owns = g.EdgesWithLabel("OWNS");
  ASSERT_EQ(owns.size(), 1u);
  const Value* pct = g.EdgeProperty(owns[0], "percentage");
  ASSERT_NE(pct, nullptr);
  EXPECT_NEAR(pct->AsDouble(), 0.45, 1e-9);
  EXPECT_EQ(g.edge(owns[0]).from, ada);
  EXPECT_EQ(g.edge(owns[0]).to, acme);
}

TEST(ControlTest, JointControlThroughOwnsChain) {
  // The Example 4.1 scenario on the full pipeline: OWNS derived from
  // HOLDS/BELONGS_TO, then CONTROLS derived from OWNS.
  pg::PropertyGraph g;
  pg::NodeId a = AddBusiness(&g, "A");
  pg::NodeId b = AddBusiness(&g, "B");
  pg::NodeId c = AddBusiness(&g, "C");
  pg::NodeId d = AddBusiness(&g, "D");
  AddShare(&g, "s1", 0.6, a, b);
  AddShare(&g, "s2", 0.6, a, c);
  AddShare(&g, "s3", 0.3, b, d);
  AddShare(&g, "s4", 0.3, c, d);
  ASSERT_TRUE(metalog::RunMetaLogSource(kOwnsProgram, &g).ok());
  auto result = metalog::RunMetaLogSource(kControlProgram, &g);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(HasEdgeBetween(g, "CONTROLS", a, b));
  EXPECT_TRUE(HasEdgeBetween(g, "CONTROLS", a, c));
  EXPECT_TRUE(HasEdgeBetween(g, "CONTROLS", a, d));  // jointly via b and c
  EXPECT_FALSE(HasEdgeBetween(g, "CONTROLS", b, d));
  // 4 self-loops + 3 proper control edges.
  EXPECT_EQ(g.EdgesWithLabel("CONTROLS").size(), 7u);
}

TEST(StakeholdersTest, CountsDistinctHolders) {
  pg::PropertyGraph g;
  pg::NodeId ada = AddPerson(&g, "P1", "rossi");
  pg::NodeId bob = AddPerson(&g, "P2", "verdi");
  pg::NodeId acme = AddBusiness(&g, "C1");
  AddShare(&g, "s1", 0.5, ada, acme);
  AddShare(&g, "s2", 0.2, ada, acme);  // same holder: still one stakeholder
  AddShare(&g, "s3", 0.3, bob, acme);
  auto result = metalog::RunMetaLogSource(kStakeholdersProgram, &g);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Value* n = g.NodeProperty(acme, "numberOfStakeholders");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(*n, Value(int64_t{2}));
}

TEST(FamilyTest, FamiliesRelativesAndFamilyOwnership) {
  pg::PropertyGraph g;
  pg::NodeId ada = AddPerson(&g, "P1", "rossi");
  pg::NodeId eva = AddPerson(&g, "P2", "rossi");
  pg::NodeId bob = AddPerson(&g, "P3", "verdi");
  pg::NodeId acme = AddBusiness(&g, "C1");
  AddShare(&g, "s1", 0.7, ada, acme);
  ASSERT_TRUE(metalog::RunMetaLogSource(kOwnsProgram, &g).ok());
  auto result = metalog::RunMetaLogSource(kFamilyProgram, &g);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Two families (rossi, verdi); members share the family node.
  auto families = g.NodesWithLabel("Family");
  EXPECT_EQ(families.size(), 2u);
  EXPECT_EQ(g.EdgesWithLabel("BELONGS_TO_FAMILY").size(), 3u);
  // IS_RELATED_TO links distinct same-surname persons both ways.
  EXPECT_TRUE(HasEdgeBetween(g, "IS_RELATED_TO", ada, eva));
  EXPECT_TRUE(HasEdgeBetween(g, "IS_RELATED_TO", eva, ada));
  EXPECT_FALSE(HasEdgeBetween(g, "IS_RELATED_TO", ada, bob));
  EXPECT_FALSE(HasEdgeBetween(g, "IS_RELATED_TO", ada, ada));
  // The rossi family owns acme through ada.
  ASSERT_EQ(g.EdgesWithLabel("FAMILY_OWNS").size(), 1u);
  pg::EdgeId fo = g.EdgesWithLabel("FAMILY_OWNS")[0];
  EXPECT_EQ(g.edge(fo).to, acme);
  const Value* fam_name =
      g.NodeProperty(g.edge(fo).from, "familyName");
  ASSERT_NE(fam_name, nullptr);
  EXPECT_EQ(*fam_name, Value("rossi"));
}

TEST(CloseLinksTest, DirectIndirectAndThirdParty) {
  pg::PropertyGraph g;
  pg::NodeId a = AddBusiness(&g, "A");
  pg::NodeId b = AddBusiness(&g, "B");
  pg::NodeId c = AddBusiness(&g, "C");
  pg::NodeId d = AddBusiness(&g, "D");
  pg::NodeId e = AddBusiness(&g, "E");
  // a owns 25% of b directly; a owns 50% of c which owns 50% of d
  // (indirect 25%); a owns 10% of e (below threshold).
  AddShare(&g, "s1", 0.25, a, b);
  AddShare(&g, "s2", 0.50, a, c);
  AddShare(&g, "s3", 0.50, c, d);
  AddShare(&g, "s4", 0.10, a, e);
  ASSERT_TRUE(metalog::RunMetaLogSource(kOwnsProgram, &g).ok());
  auto result = metalog::RunMetaLogSource(kCloseLinksProgram, &g);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(HasEdgeBetween(g, "CLOSE_LINK", a, b));   // direct 25%
  EXPECT_TRUE(HasEdgeBetween(g, "CLOSE_LINK", a, d));   // indirect 25%
  EXPECT_FALSE(HasEdgeBetween(g, "CLOSE_LINK", a, e));  // 10% < 20%
  // Third party: a holds >= 20% of both b and d -> b and d closely linked.
  EXPECT_TRUE(HasEdgeBetween(g, "CLOSE_LINK", b, d));
  EXPECT_TRUE(HasEdgeBetween(g, "CLOSE_LINK", d, b));
}

TEST(CloseLinksTest, CyclicShareholdingTerminates) {
  pg::PropertyGraph g;
  pg::NodeId a = AddBusiness(&g, "A");
  pg::NodeId b = AddBusiness(&g, "B");
  AddShare(&g, "s1", 0.8, a, b);
  AddShare(&g, "s2", 0.8, b, a);  // cross-shareholding cycle
  ASSERT_TRUE(metalog::RunMetaLogSource(kOwnsProgram, &g).ok());
  auto result = metalog::RunMetaLogSource(kCloseLinksProgram, &g);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(HasEdgeBetween(g, "CLOSE_LINK", a, b));
  EXPECT_TRUE(HasEdgeBetween(g, "CLOSE_LINK", b, a));
}

TEST(IntensionalSuiteTest, RunsOnGeneratedNetwork) {
  GeneratorConfig config;
  config.num_companies = 150;
  config.num_persons = 250;
  config.seed = 7;
  ShareholdingNetwork net = ShareholdingNetwork::Generate(config);
  pg::PropertyGraph g = net.ToInstanceGraph();
  ASSERT_TRUE(metalog::RunMetaLogSource(kOwnsProgram, &g).ok());
  ASSERT_TRUE(metalog::RunMetaLogSource(kControlProgram, &g).ok());
  ASSERT_TRUE(metalog::RunMetaLogSource(kStakeholdersProgram, &g).ok());
  ASSERT_TRUE(metalog::RunMetaLogSource(kFamilyProgram, &g).ok());
  // Self-control for every business, plus whatever majority chains exist.
  EXPECT_GE(g.EdgesWithLabel("CONTROLS").size(), 150u);
  EXPECT_GT(g.EdgesWithLabel("OWNS").size(), 0u);
  EXPECT_GT(g.NodesWithLabel("Family").size(), 0u);
  // Control is reflexive and transitive on this graph: spot-check
  // transitivity pairs.
  std::map<pg::NodeId, std::set<pg::NodeId>> controls;
  for (pg::EdgeId e : g.EdgesWithLabel("CONTROLS")) {
    controls[g.edge(e).from].insert(g.edge(e).to);
  }
  for (const auto& [x, targets] : controls) {
    for (pg::NodeId z : targets) {
      if (z == x) continue;
      for (pg::NodeId y : controls[z]) {
        EXPECT_TRUE(controls[x].count(y) > 0)
            << "transitivity violated: " << x << " ctrl " << z << " ctrl "
            << y;
      }
    }
  }
}

}  // namespace
}  // namespace kgm::finkg
