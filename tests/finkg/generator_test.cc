#include "finkg/generator.h"

#include <gtest/gtest.h>

namespace kgm::finkg {
namespace {

GeneratorConfig TestConfig() {
  GeneratorConfig config;
  config.num_companies = 4000;
  config.num_persons = 6000;
  config.seed = 42;
  return config;
}

TEST(GeneratorTest, DeterministicForSeed) {
  ShareholdingNetwork a = ShareholdingNetwork::Generate(TestConfig());
  ShareholdingNetwork b = ShareholdingNetwork::Generate(TestConfig());
  ASSERT_EQ(a.holdings().size(), b.holdings().size());
  for (size_t i = 0; i < a.holdings().size(); ++i) {
    EXPECT_EQ(a.holdings()[i].holder, b.holdings()[i].holder);
    EXPECT_EQ(a.holdings()[i].company, b.holdings()[i].company);
    EXPECT_DOUBLE_EQ(a.holdings()[i].pct, b.holdings()[i].pct);
  }
}

TEST(GeneratorTest, HoldingsAreWellFormed) {
  ShareholdingNetwork net = ShareholdingNetwork::Generate(TestConfig());
  ASSERT_FALSE(net.holdings().empty());
  for (const Holding& h : net.holdings()) {
    EXPECT_LT(h.company, net.config().num_companies);
    EXPECT_LT(h.holder, net.num_entities());
    EXPECT_NE(h.holder, h.company);
    EXPECT_GT(h.pct, 0.0);
    EXPECT_LE(h.pct, 1.0);
  }
}

TEST(GeneratorTest, PerCompanyPercentagesSumToAtMostOne) {
  ShareholdingNetwork net = ShareholdingNetwork::Generate(TestConfig());
  std::vector<double> totals(net.config().num_companies, 0.0);
  for (const Holding& h : net.holdings()) totals[h.company] += h.pct;
  for (double t : totals) EXPECT_LE(t, 1.0 + 1e-9);
}

TEST(GeneratorTest, Section21ShapeHolds) {
  // The calibration test for experiment E1: the published statistics table
  // must reproduce in *shape* (DESIGN.md).
  ShareholdingNetwork net = ShareholdingNetwork::Generate(TestConfig());
  analytics::GraphStatsReport r =
      analytics::ComputeGraphStats(net.ToDigraph());

  // SCCs are near-trivial: count close to node count, small largest SCC —
  // but cross-shareholding rings exist (paper: largest SCC 1.9k of 11.97M).
  EXPECT_GT(r.scc.count, r.num_nodes * 95 / 100);
  EXPECT_GE(r.scc.max_size, 3u);
  EXPECT_LT(r.scc.max_size, r.num_nodes / 50);
  EXPECT_NEAR(r.scc.avg_size, 1.0, 0.05);

  // One giant WCC plus many smaller ones.
  EXPECT_GT(r.wcc.max_size, r.num_nodes / 3);
  EXPECT_GT(r.wcc.count, 10u);

  // Degree asymmetry: avg in over companies-with-shareholders around 3,
  // avg out over shareholders below it (paper: 3.12 vs 1.78).
  EXPECT_GT(r.degrees.avg_in, 2.0);
  EXPECT_LT(r.degrees.avg_in, 5.0);
  EXPECT_GT(r.degrees.avg_out, 1.2);
  EXPECT_LT(r.degrees.avg_out, r.degrees.avg_in);

  // Hubs: max degrees far above the averages (scale-free signature).
  EXPECT_GT(static_cast<double>(r.degrees.max_in), 10 * r.degrees.avg_in);
  EXPECT_GT(static_cast<double>(r.degrees.max_out),
            10 * r.degrees.avg_out);

  // Tiny clustering coefficient.
  EXPECT_LT(r.clustering, 0.05);

  // Power-law tail on the in-degree distribution.
  EXPECT_GT(r.power_law_alpha, 1.5);
  EXPECT_LT(r.power_law_alpha, 4.0);
}

TEST(GeneratorTest, InstanceGraphMatchesTranslatedSchema) {
  GeneratorConfig config;
  config.num_companies = 50;
  config.num_persons = 80;
  ShareholdingNetwork net = ShareholdingNetwork::Generate(config);
  pg::PropertyGraph g = net.ToInstanceGraph();
  // Entities carry the accumulated labels of the Figure 6 schema.
  EXPECT_EQ(g.NodesWithLabel("Business").size(), 50u);
  EXPECT_EQ(g.NodesWithLabel("PhysicalPerson").size(), 80u);
  EXPECT_EQ(g.NodesWithLabel("Person").size(), 130u);
  // One Share per holding, with HOLDS and BELONGS_TO edges.
  EXPECT_EQ(g.NodesWithLabel("Share").size(), net.holdings().size());
  EXPECT_EQ(g.EdgesWithLabel("HOLDS").size(), net.holdings().size());
  EXPECT_EQ(g.EdgesWithLabel("BELONGS_TO").size(), net.holdings().size());
  // Every share has exactly one BELONGS_TO (cardinality (1,1)).
  for (pg::NodeId s : g.NodesWithLabel("Share")) {
    size_t belongs = 0;
    for (pg::EdgeId e : g.OutEdges(s)) {
      if (g.edge(e).label == "BELONGS_TO") ++belongs;
    }
    EXPECT_EQ(belongs, 1u);
  }
}

TEST(GeneratorTest, OwnershipGraphAggregatesByPair) {
  GeneratorConfig config;
  config.num_companies = 100;
  config.num_persons = 100;
  ShareholdingNetwork net = ShareholdingNetwork::Generate(config);
  pg::PropertyGraph g = net.ToOwnershipGraph();
  EXPECT_EQ(g.NodesWithLabel("Business").size(), 100u);
  EXPECT_TRUE(g.NodesWithLabel("PhysicalPerson").empty());
  // Every OWNS edge carries a percentage in (0, 1].
  for (pg::EdgeId e : g.EdgesWithLabel("OWNS")) {
    const Value* pct = g.EdgeProperty(e, "percentage");
    ASSERT_NE(pct, nullptr);
    EXPECT_GT(pct->AsDouble(), 0.0);
    EXPECT_LE(pct->AsDouble(), 1.0 + 1e-9);
  }
  pg::PropertyGraph with_persons = net.ToOwnershipGraph(true);
  EXPECT_GT(with_persons.num_nodes(), g.num_nodes());
  EXPECT_GE(with_persons.EdgesWithLabel("OWNS").size(),
            g.EdgesWithLabel("OWNS").size());
}

TEST(GeneratorTest, SyntheticRegisterData) {
  ShareholdingNetwork net = ShareholdingNetwork::Generate(TestConfig());
  EXPECT_EQ(net.CompanyName(3), "company_3");
  EXPECT_EQ(net.FiscalCode(3), "C3");
  uint32_t person = static_cast<uint32_t>(net.config().num_companies) + 5;
  EXPECT_EQ(net.FiscalCode(person), "P" + std::to_string(person));
  EXPECT_FALSE(net.PersonSurname(person).empty());
  // Some surnames repeat (families exist).
  std::map<std::string, int> counts;
  for (uint32_t i = 0; i < 2000; ++i) {
    ++counts[net.PersonSurname(
        static_cast<uint32_t>(net.config().num_companies) + i)];
  }
  bool repeated = false;
  for (const auto& [name, count] : counts) {
    if (count > 1) repeated = true;
  }
  EXPECT_TRUE(repeated);
}

}  // namespace
}  // namespace kgm::finkg
