// Differential correctness of point queries over the Company KG and every
// shipped example program: for each program, a full materialization is the
// oracle, and EvalPointQuery — whatever route it picks (EDB lookup, magic
// rewrite, QSQR, or the materialize fallback) — must return exactly the
// oracle's output filtered by the binding.  Bindings cover bound-first,
// all-bound boolean (both a hit and a miss), and a constant absent from
// the data (empty answer), at 1 and 4 engine threads.  Deadline expiry
// and cooperative cancellation must surface as DeadlineExceeded from the
// point-query entry too.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "instance/pipeline.h"
#include "metalog/catalog.h"
#include "metalog/mtv.h"
#include "metalog/parser.h"
#include "vadalog/engine.h"
#include "vadalog/magic/point_query.h"
#include "vadalog/parser.h"

namespace kgm::finkg {
namespace {

namespace magic = vadalog::magic;

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct ProgramUnderTest {
  std::string name;
  vadalog::Program program;
  metalog::GraphCatalog catalog;
};

ProgramUnderTest CompileMeta(const std::string& name,
                             const std::string& source) {
  ProgramUnderTest p;
  p.name = name;
  auto parsed = metalog::ParseMetaProgram(source);
  EXPECT_TRUE(parsed.ok()) << name << ": " << parsed.status().ToString();
  p.catalog = instance::SchemaCatalog(CompanyKgSchema());
  EXPECT_TRUE(p.catalog.AbsorbProgram(*parsed).ok());
  auto mtv = metalog::TranslateMetaProgram(*parsed, p.catalog);
  EXPECT_TRUE(mtv.ok()) << name << ": " << mtv.status().ToString();
  p.program = std::move(mtv->program);
  return p;
}

ProgramUnderTest CompileVadalog(const std::string& name,
                                const std::string& source) {
  ProgramUnderTest p;
  p.name = name;
  auto parsed = vadalog::ParseProgram(source);
  EXPECT_TRUE(parsed.ok()) << name << ": " << parsed.status().ToString();
  p.program = std::move(*parsed);
  p.catalog = instance::SchemaCatalog(CompanyKgSchema());
  return p;
}

// The in-tree finkg programs plus every file under examples/programs/.
std::vector<ProgramUnderTest> AllPrograms() {
  std::vector<ProgramUnderTest> out;
  out.push_back(CompileMeta("finkg_control", kControlProgram));
  out.push_back(CompileMeta("finkg_close_links", kCloseLinksProgram));
  const std::string dir = KGM_EXAMPLES_DIR;
  for (const char* mlog :
       {"closelinks.mlog", "control.mlog", "family.mlog", "owns.mlog",
        "stakeholders.mlog"}) {
    out.push_back(CompileMeta(mlog, ReadFileOrDie(dir + "/" + mlog)));
  }
  out.push_back(
      CompileVadalog("reach.vlog", ReadFileOrDie(dir + "/reach.vlog")));
  return out;
}

// Union of the instance encoding (HOLDS/BELONGS_TO shares) and the
// ownership encoding (aggregated OWNS edges): every shipped program finds
// its extensional inputs populated, whichever of the two layers it reads.
vadalog::FactDb MakeEdb(const metalog::GraphCatalog& catalog) {
  GeneratorConfig config;
  config.num_companies = 50;
  config.num_persons = 60;
  config.seed = 29;
  ShareholdingNetwork net = ShareholdingNetwork::Generate(config);
  vadalog::FactDb db = metalog::EncodeGraph(net.ToInstanceGraph(), catalog);
  vadalog::FactDb owns = metalog::EncodeGraph(
      net.ToOwnershipGraph(/*include_persons=*/true), catalog);
  for (const std::string& pred : owns.Predicates()) {
    const vadalog::Relation* rel = owns.Get(pred);
    vadalog::Relation& dst = db.GetOrCreate(pred, rel->arity());
    for (const vadalog::Tuple& t : rel->tuples()) dst.Insert(t);
  }
  return db;
}

std::vector<vadalog::Tuple> Sorted(std::vector<vadalog::Tuple> ts) {
  std::sort(ts.begin(), ts.end(),
            [](const vadalog::Tuple& a, const vadalog::Tuple& b) {
              return std::lexicographical_compare(a.begin(), a.end(),
                                                  b.begin(), b.end());
            });
  return ts;
}

std::vector<vadalog::Tuple> Filter(const vadalog::Relation* rel,
                                   const magic::QueryBinding& query) {
  std::vector<vadalog::Tuple> out;
  if (rel == nullptr) return out;
  for (const vadalog::Tuple& t : rel->tuples()) {
    if (query.Matches(t)) out.push_back(t);
  }
  return out;
}

// Predicates a program is "about": its declared outputs, else every head.
std::vector<std::string> QueryPredicates(const vadalog::Program& program) {
  std::vector<std::string> preds = program.outputs;
  if (preds.empty()) {
    std::set<std::string> seen;
    for (const vadalog::Rule& r : program.rules) {
      for (const vadalog::Atom& h : r.head) {
        if (seen.insert(h.predicate).second) preds.push_back(h.predicate);
      }
    }
  }
  if (preds.size() > 3) preds.resize(3);
  return preds;
}

struct SuiteCounters {
  size_t queries = 0;
  size_t magic_mode = 0;
  size_t qsqr_mode = 0;
  size_t edb_mode = 0;
  size_t fallbacks = 0;
};

void RunDifferential(const ProgramUnderTest& put, size_t threads,
                     SuiteCounters* counters) {
  SCOPED_TRACE(put.name + " @" + std::to_string(threads) + "t");
  vadalog::FactDb edb = MakeEdb(put.catalog);

  vadalog::EngineOptions engine_options;
  engine_options.num_threads = threads;

  // Oracle: full materialization on a clone of the same EDB.
  vadalog::FactDb oracle = edb.Clone();
  {
    vadalog::Engine engine(put.program, engine_options);
    ASSERT_TRUE(engine.status().ok()) << engine.status().ToString();
    ASSERT_TRUE(engine.Run(&oracle).ok());
  }

  for (const std::string& pred : QueryPredicates(put.program)) {
    const vadalog::Relation* rel = oracle.Get(pred);
    if (rel == nullptr || rel->size() == 0 || rel->arity() == 0) continue;
    const vadalog::Tuple sample = rel->tuple(0);

    std::vector<magic::QueryBinding> bindings;
    // Bound first argument.
    {
      magic::QueryBinding q{pred, {}};
      q.args.assign(rel->arity(), std::nullopt);
      q.args[0] = sample[0];
      bindings.push_back(std::move(q));
    }
    // All bound: a tuple that is in the answer (boolean yes).
    {
      magic::QueryBinding q{pred, {}};
      for (const Value& v : sample) q.args.push_back(v);
      bindings.push_back(std::move(q));
    }
    // A constant that appears nowhere: empty answer.
    {
      magic::QueryBinding q{pred, {}};
      q.args.assign(rel->arity(), std::nullopt);
      q.args[0] = Value("__no_such_constant__");
      bindings.push_back(std::move(q));
    }

    for (const magic::QueryBinding& q : bindings) {
      SCOPED_TRACE(pred + "(" + q.Adornment() + ")");
      vadalog::FactDb scratch = edb.Clone();
      magic::PointQueryOptions options;
      options.engine = engine_options;
      magic::PointQueryStats stats;
      auto got = magic::EvalPointQuery(put.program, q, &scratch, options,
                                       &stats);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(Sorted(*got), Sorted(Filter(rel, q)))
          << "mode=" << magic::PointQueryModeName(stats.mode) << " fallback="
          << magic::FallbackReasonName(stats.fallback) << " "
          << stats.fallback_detail;
      ++counters->queries;
      switch (stats.mode) {
        case magic::PointQueryMode::kMagic:
          ++counters->magic_mode;
          break;
        case magic::PointQueryMode::kQsqr:
          ++counters->qsqr_mode;
          break;
        case magic::PointQueryMode::kEdbLookup:
          ++counters->edb_mode;
          break;
        case magic::PointQueryMode::kMaterialize:
          ++counters->fallbacks;
          // Routing away from magic must always carry a reason.
          EXPECT_NE(stats.fallback, magic::FallbackReason::kNone);
          break;
        case magic::PointQueryMode::kOff:
          ADD_FAILURE() << "query did not run";
          break;
      }
    }
  }
}

class PointQueryDifferential : public ::testing::TestWithParam<size_t> {};

TEST_P(PointQueryDifferential, AllProgramsMatchOracle) {
  SuiteCounters counters;
  for (const ProgramUnderTest& put : AllPrograms()) {
    RunDifferential(put, GetParam(), &counters);
  }
  // The suite exercised real work in each routing mode: reach.vlog's
  // bound closure queries go through magic, and the aggregate/restricted
  // programs must have recorded reasons on their materialize fallbacks.
  EXPECT_GT(counters.queries, 20u);
  EXPECT_GT(counters.magic_mode, 0u);
  EXPECT_GT(counters.fallbacks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, PointQueryDifferential,
                         ::testing::Values(size_t{1}, size_t{4}),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return std::to_string(info.param) + "_threads";
                         });

TEST(PointQueryDeadlineTest, ExpiredDeadlineSurfaces) {
  ProgramUnderTest put = CompileMeta("finkg_control", kControlProgram);
  vadalog::FactDb edb = MakeEdb(put.catalog);
  magic::PointQueryOptions options;
  options.engine.deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  magic::QueryBinding q{"CONTROLS", {}};
  const vadalog::Relation* base = edb.Get("OWNS");
  ASSERT_NE(base, nullptr);
  // Arity of CONTROLS is unknown before the run; an all-free query on a
  // deadline-expired engine must fail before it could matter.
  q.args.assign(3, std::nullopt);
  q.args[1] = Value("c1");
  vadalog::FactDb scratch = edb.Clone();
  magic::PointQueryStats stats;
  auto r = magic::EvalPointQuery(put.program, q, &scratch, options, &stats);
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
}

TEST(PointQueryDeadlineTest, CancelFlagSurfaces) {
  ProgramUnderTest put =
      CompileVadalog("reach.vlog",
                     ReadFileOrDie(std::string(KGM_EXAMPLES_DIR) +
                                   "/reach.vlog"));
  vadalog::FactDb edb = MakeEdb(put.catalog);
  magic::PointQueryOptions options;
  auto flag = std::make_shared<std::atomic<bool>>(true);
  options.engine.cancel = flag;
  magic::QueryBinding q{"reach", {Value("c1"), std::nullopt}};
  vadalog::FactDb scratch = edb.Clone();
  magic::PointQueryStats stats;
  auto r = magic::EvalPointQuery(put.program, q, &scratch, options, &stats);
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
}

}  // namespace
}  // namespace kgm::finkg
