// Differential correctness of incremental materialization over the Company
// KG: randomized shareholding-update batches (mixed inserts and deletes,
// deletes cascading into rederivation) are streamed through
// IncrementalView::Apply for the `control` and `close_links` programs, and
// after every batch the maintained database is compared against a
// from-scratch materialization on the same post-delta EDB.
//
// `control` aggregates, so the maintainer recomputes affected strata and
// the comparison is bit-identical (row order and float bits included);
// `close_links` is Skolem-existential and maintained by DRed, where the
// contract is set-level equality.  Both are exercised at 1 and 4 engine
// threads — the result must not depend on the worker count.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "finkg/update_feed.h"
#include "instance/pipeline.h"
#include "metalog/catalog.h"
#include "metalog/mtv.h"
#include "metalog/parser.h"
#include "vadalog/engine.h"
#include "vadalog/incremental.h"

namespace kgm::finkg {
namespace {

struct Compiled {
  metalog::MetaProgram meta;
  metalog::GraphCatalog catalog;
};

Compiled CompileMeta(const char* source) {
  Compiled c;
  auto parsed = metalog::ParseMetaProgram(source);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  c.meta = std::move(*parsed);
  c.catalog = instance::SchemaCatalog(CompanyKgSchema());
  EXPECT_TRUE(c.catalog.AbsorbProgram(c.meta).ok());
  return c;
}

vadalog::Program Translate(const Compiled& c) {
  auto mtv = metalog::TranslateMetaProgram(c.meta, c.catalog);
  EXPECT_TRUE(mtv.ok()) << mtv.status().ToString();
  return std::move(mtv->program);
}

struct DifferentialCase {
  const char* name;
  const char* source;
  vadalog::MaintenanceMode expected_mode;
  size_t threads;
};

class IncrementalDifferential
    : public ::testing::TestWithParam<DifferentialCase> {};

TEST_P(IncrementalDifferential, MatchesFromScratchAfterEveryBatch) {
  const DifferentialCase& tc = GetParam();
  GeneratorConfig config;
  config.num_companies = 60;
  config.num_persons = 80;
  config.seed = 17;
  ShareholdingNetwork net = ShareholdingNetwork::Generate(config);

  Compiled compiled = CompileMeta(tc.source);
  vadalog::FactDb edb = metalog::EncodeGraph(
      net.ToOwnershipGraph(/*include_persons=*/true), compiled.catalog);
  const vadalog::Relation* owns = edb.Get("OWNS");
  ASSERT_NE(owns, nullptr);
  ASSERT_GT(owns->size(), 0u);

  vadalog::EngineOptions options;
  options.num_threads = tc.threads;
  vadalog::IncrementalView view(Translate(compiled), options);
  ASSERT_TRUE(view.status().ok()) << view.status().ToString();
  EXPECT_EQ(view.mode(), tc.expected_mode);
  ASSERT_TRUE(view.Initialize(edb.Clone()).ok());

  UpdateFeedConfig feed_config;
  feed_config.edge_pred = "OWNS";
  feed_config.batch_size = 6;
  feed_config.delete_fraction = 0.5;  // every batch mixes deletes + inserts
  feed_config.seed = 23;
  UpdateFeed feed(owns, feed_config);

  const bool ordered = tc.expected_mode != vadalog::MaintenanceMode::kDRed;
  size_t total_deleted = 0;
  size_t total_overdeleted = 0;
  for (int batch = 0; batch < 4; ++batch) {
    vadalog::EdbDelta delta = feed.NextBatch();
    ASSERT_TRUE(view.Apply(delta).ok());
    total_deleted += view.last_stats().edb_deleted;
    total_overdeleted += view.last_stats().overdeleted;

    // From-scratch baseline on the same post-delta EDB, same thread count.
    vadalog::FactDb rebuilt = view.edb().Clone();
    vadalog::Engine engine(Translate(compiled), options);
    ASSERT_TRUE(engine.status().ok());
    ASSERT_TRUE(engine.Run(&rebuilt).ok());

    std::string diff;
    EXPECT_FALSE(
        vadalog::DescribeFirstDifference(view.db(), rebuilt, ordered, &diff))
        << tc.name << " batch " << batch << " at " << tc.threads
        << " threads: " << diff;
  }
  // The feed really deleted EDB tuples (not just no-op deletes), so the
  // comparison covered the deletion path end to end.
  EXPECT_GT(total_deleted, 0u);
  if (tc.expected_mode == vadalog::MaintenanceMode::kDRed) {
    // Deleted OWNS edges support derived IO chains, so DRed's overdeletion
    // phase must have fired.
    EXPECT_GT(total_overdeleted, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CompanyKg, IncrementalDifferential,
    ::testing::Values(
        DifferentialCase{"control_1t", kControlProgram,
                         vadalog::MaintenanceMode::kRecomputeStrata, 1},
        DifferentialCase{"control_4t", kControlProgram,
                         vadalog::MaintenanceMode::kRecomputeStrata, 4},
        DifferentialCase{"close_links_1t", kCloseLinksProgram,
                         vadalog::MaintenanceMode::kDRed, 1},
        DifferentialCase{"close_links_4t", kCloseLinksProgram,
                         vadalog::MaintenanceMode::kDRed, 4}),
    [](const ::testing::TestParamInfo<DifferentialCase>& info) {
      return info.param.name;
    });

TEST(UpdateFeedTest, BatchesRespectConfigAndRelationShape) {
  GeneratorConfig config;
  config.num_companies = 30;
  config.num_persons = 40;
  config.seed = 3;
  ShareholdingNetwork net = ShareholdingNetwork::Generate(config);
  Compiled compiled = CompileMeta(kCloseLinksProgram);
  vadalog::FactDb edb = metalog::EncodeGraph(
      net.ToOwnershipGraph(/*include_persons=*/true), compiled.catalog);
  const vadalog::Relation* owns = edb.Get("OWNS");
  ASSERT_NE(owns, nullptr);

  UpdateFeedConfig feed_config;
  feed_config.edge_pred = "OWNS";
  feed_config.batch_size = 10;
  feed_config.delete_fraction = 0.3;
  feed_config.seed = 5;
  UpdateFeed feed(owns, feed_config);
  const size_t initial_live = feed.live_edges();
  EXPECT_EQ(initial_live, owns->size());

  vadalog::EdbDelta delta = feed.NextBatch();
  size_t deletes = 0, inserts = 0;
  for (const auto& [pred, ts] : delta.deletes) {
    EXPECT_EQ(pred, "OWNS");
    for (const auto& t : ts) {
      EXPECT_EQ(t.size(), owns->arity());
      EXPECT_TRUE(owns->Contains(t));  // deletes name real tuples
      ++deletes;
    }
  }
  for (const auto& [pred, ts] : delta.inserts) {
    EXPECT_EQ(pred, "OWNS");
    for (const auto& t : ts) {
      EXPECT_EQ(t.size(), owns->arity());
      EXPECT_FALSE(owns->Contains(t));  // inserts are fresh rows
      ++inserts;
    }
  }
  EXPECT_EQ(deletes, 3u);  // floor(10 * 0.3)
  EXPECT_EQ(inserts, 7u);
  EXPECT_EQ(feed.live_edges(), initial_live - deletes + inserts);
}

}  // namespace
}  // namespace kgm::finkg
