// Edge cases and failure injection for the Vadalog engine: resource
// budgets, degenerate atoms, constant-only heads, deep recursion, repeated
// runs, and chase-mode corner cases.

#include <gtest/gtest.h>

#include "vadalog/engine.h"
#include "vadalog/parser.h"

namespace kgm::vadalog {
namespace {

TEST(EngineEdgeTest, ZeroArityPredicates) {
  FactDb db;
  Status s = RunProgram(R"(
    @fact flag().
    flag() -> derived().
    derived() -> chained().
  )", &db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(db.Get("chained")->size(), 1u);
}

TEST(EngineEdgeTest, ConstantOnlyHead) {
  FactDb db;
  db.Add("trigger", {Value(int64_t{1})});
  Status s = RunProgram(R"(trigger(x) -> answer(42, "yes").)", &db);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(db.Get("answer")->Contains({Value(int64_t{42}),
                                          Value("yes")}));
}

TEST(EngineEdgeTest, SelfJoinOnSamePredicate) {
  FactDb db;
  db.Add("e", {Value(int64_t{1}), Value(int64_t{2})});
  db.Add("e", {Value(int64_t{2}), Value(int64_t{3})});
  db.Add("e", {Value(int64_t{2}), Value(int64_t{4})});
  Status s = RunProgram("e(x, y), e(y, z) -> two_hop(x, z).", &db);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(db.Get("two_hop")->size(), 2u);
}

TEST(EngineEdgeTest, DeepLinearRecursion) {
  FactDb db;
  const int64_t n = 3000;
  for (int64_t i = 0; i + 1 < n; ++i) {
    db.Add("succ", {Value(i), Value(i + 1)});
  }
  Status s = RunProgram(R"(
    @fact reach(0).
    reach(x), succ(x, y) -> reach(y).
  )", &db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(db.Get("reach")->size(), static_cast<size_t>(n));
}

TEST(EngineEdgeTest, FactBudgetSurfacesResourceExhausted) {
  FactDb db;
  db.Add("n", {Value(int64_t{0})});
  EngineOptions options;
  options.max_facts = 100;
  Status s = RunProgram(R"(
    n(x), y = x + 1 -> n(y).
  )", &db, options);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(EngineEdgeTest, RerunningIsIdempotent) {
  FactDb db;
  db.Add("edge", {Value(int64_t{1}), Value(int64_t{2})});
  db.Add("edge", {Value(int64_t{2}), Value(int64_t{3})});
  const char* program = R"(
    edge(x, y) -> path(x, y).
    path(x, y), edge(y, z) -> path(x, z).
  )";
  ASSERT_TRUE(RunProgram(program, &db).ok());
  size_t facts = db.TotalFacts();
  ASSERT_TRUE(RunProgram(program, &db).ok());
  EXPECT_EQ(db.TotalFacts(), facts);
}

TEST(EngineEdgeTest, DuplicateBodyLiteralsAreHarmless) {
  FactDb db;
  db.Add("p", {Value(int64_t{1})});
  Status s = RunProgram("p(x), p(x) -> q(x).", &db);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(db.Get("q")->size(), 1u);
}

TEST(EngineEdgeTest, ConstantsInBodyFilter) {
  FactDb db;
  db.Add("p", {Value("a"), Value(int64_t{1})});
  db.Add("p", {Value("b"), Value(int64_t{2})});
  Status s = RunProgram(R"(p("a", y) -> q(y).)", &db);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(db.Get("q")->size(), 1u);
  EXPECT_TRUE(db.Get("q")->Contains({Value(int64_t{1})}));
}

TEST(EngineEdgeTest, NegationOverEmptyRelation) {
  FactDb db;
  db.Add("node", {Value(int64_t{1})});
  // `blocked` never gets facts: negation trivially holds.
  Status s = RunProgram(R"(
    node(x), not blocked(x) -> free(x).
  )", &db);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(db.Get("free")->size(), 1u);
}

TEST(EngineEdgeTest, NegationWithWildcardPositions) {
  FactDb db;
  db.Add("node", {Value(int64_t{1})});
  db.Add("node", {Value(int64_t{2})});
  db.Add("edge", {Value(int64_t{1}), Value(int64_t{9})});
  // Nodes with no outgoing edge at all.
  Status s = RunProgram("node(x), not edge(x, _) -> sink(x).", &db);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(db.Get("sink")->size(), 1u);
  EXPECT_TRUE(db.Get("sink")->Contains({Value(int64_t{2})}));
}

TEST(EngineEdgeTest, MonotonicMaxEmitsImprovingValues) {
  FactDb db;
  db.Add("score", {Value("a"), Value(int64_t{1})});
  db.Add("score", {Value("a"), Value(int64_t{5})});
  db.Add("score", {Value("a"), Value(int64_t{3})});
  Status s = RunProgram(
      "score(k, v), m = mmax(v, <v>) -> best(k, m).", &db);
  ASSERT_TRUE(s.ok());
  // Improving emissions accumulate; the true max is present.
  EXPECT_TRUE(db.Get("best")->Contains({Value("a"), Value(int64_t{5})}));
}

TEST(EngineEdgeTest, MixedAggregateModesRejected) {
  Program program = ParseProgram(R"(
    p(x, w), a = msum(w, <x>), b = sum(w, <x>) -> q(a, b).
  )").value();
  Engine engine(std::move(program));
  EXPECT_FALSE(engine.status().ok());
}

TEST(EngineEdgeTest, MultipleStratifiedAggregatesInOneRule) {
  FactDb db;
  db.Add("m", {Value("g"), Value(int64_t{2})});
  db.Add("m", {Value("g"), Value(int64_t{5})});
  Status s = RunProgram(
      "m(g, v), lo = min(v, <v>), hi = max(v, <v>), total = sum(v, <v>) "
      "-> stats(g, lo, hi, total).", &db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(db.Get("stats")->Contains(
      {Value("g"), Value(int64_t{2}), Value(int64_t{5}),
       Value(int64_t{7})}));
}

TEST(EngineEdgeTest, RestrictedChaseReusesExistingWitnessAcrossRules) {
  FactDb db;
  db.Add("person", {Value("bob")});
  db.Add("dept_of", {Value("bob"), Value("accounting")});
  EngineOptions options;
  options.chase_mode = ChaseMode::kRestricted;
  // The multi-atom head is already satisfiable with d = "accounting".
  // (The restricted chase is order-dependent: known_dept must be derived
  // before the existential rule checks satisfaction, so its rule comes
  // first in the program text.)
  Status s = RunProgram(R"(
    dept_of(x, d) -> known_dept(d).
    person(x) -> exists d dept_of(x, d), known_dept(d).
  )", &db, options);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(db.Get("dept_of")->size(), 1u);  // no fresh null needed
}

TEST(EngineEdgeTest, EmptyDatabaseNoRuleFires) {
  FactDb db;
  Status s = RunProgram("p(x) -> q(x).", &db);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(db.Get("q")->size(), 0u);
}

TEST(EngineEdgeTest, LargeStrataCount) {
  // A 50-level pipeline exercises the stratum scheduler.
  std::string program;
  FactDb db;
  db.Add("p0", {Value(int64_t{7})});
  for (int i = 0; i < 50; ++i) {
    program += "p" + std::to_string(i) + "(x) -> p" +
               std::to_string(i + 1) + "(x).\n";
  }
  Status s = RunProgram(program, &db);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(db.Get("p50")->Contains({Value(int64_t{7})}));
}

}  // namespace
}  // namespace kgm::vadalog
