// Deterministic parallel restricted chase: multi-threaded runs must be
// bit-identical to num_threads = 1 — same relations, same row order, and
// the same labeled-null ids — because workers only screen candidates
// against the frozen pre-barrier database while the driver re-checks and
// mints in ascending (item, seq) order.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "instance/pipeline.h"
#include "vadalog/engine.h"
#include "vadalog/parser.h"

namespace kgm::vadalog {
namespace {

// Row-order, Value-exact comparison: LabeledNull equality is by id, so a
// single null minted in a different order fails the test.
void ExpectBitIdentical(const FactDb& want, const FactDb& got,
                        const std::string& label) {
  std::vector<std::string> preds = want.Predicates();
  for (const std::string& p : got.Predicates()) {
    bool known = false;
    for (const std::string& q : preds) known = known || q == p;
    EXPECT_TRUE(known) << label << ": unexpected predicate " << p;
  }
  for (const std::string& p : preds) {
    const Relation* a = want.Get(p);
    const Relation* b = got.Get(p);
    ASSERT_NE(b, nullptr) << label << ": missing predicate " << p;
    ASSERT_EQ(a->size(), b->size()) << label << ": size of " << p;
    for (size_t i = 0; i < a->size(); ++i) {
      ASSERT_TRUE(a->tuple(i) == b->tuple(i))
          << label << ": " << p << " row " << i << " differs";
    }
  }
}

struct ChaseRun {
  FactDb db;
  EngineStats stats;
};

ChaseRun RunRestricted(const char* program_text,
                       const std::function<void(FactDb*)>& load,
                       size_t threads) {
  ChaseRun run;
  load(&run.db);
  auto parsed = ParseProgram(program_text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  EngineOptions options;
  options.chase_mode = ChaseMode::kRestricted;
  options.num_threads = threads;
  Engine engine(std::move(parsed).value(), options);
  EXPECT_TRUE(engine.status().ok()) << engine.status().ToString();
  Status s = engine.Run(&run.db);
  EXPECT_TRUE(s.ok()) << s.ToString();
  run.stats = engine.stats();
  return run;
}

// Recursive existential closure minting one automatic null per reachable
// pair: the heaviest shape the barrier chase handles, because every
// iteration both screens against earlier nulls and mints new ones.
TEST(ChaseParallelTest, ExistentialClosureBitIdenticalAcrossThreads) {
  const char* program = R"(
    edge(x, y) -> exists w rel(x, y, w).
    rel(x, y, w), edge(y, z) -> exists v rel(x, z, v).
  )";
  auto load = [](FactDb* db) {
    Rng rng(1234);
    for (int i = 0; i < 160; ++i) {
      auto a = static_cast<int64_t>(rng.NextBelow(60));
      auto b = static_cast<int64_t>(rng.NextBelow(60));
      db->Add("edge", {Value(a), Value(b)});
    }
  };
  ChaseRun seq = RunRestricted(program, load, 1);
  ASSERT_GT(seq.stats.nulls_minted, 0u);
  for (size_t threads : {4u, 16u}) {
    ChaseRun par = RunRestricted(program, load, threads);
    ExpectBitIdentical(seq.db, par.db,
                       "threads=" + std::to_string(threads));
    EXPECT_EQ(par.stats.nulls_minted, seq.stats.nulls_minted)
        << "threads " << threads;
    EXPECT_EQ(par.stats.facts_derived, seq.stats.facts_derived)
        << "threads " << threads;
  }
}

// Two rules whose heads overlap on the same existential atom: the second
// rule's candidates are screened against the frozen database (which does
// not yet hold the first rule's nulls) but re-checked at the barrier
// against the live database, so each x gets exactly one witness.
TEST(ChaseParallelTest, SameBarrierSatisfactionMintsOneWitness) {
  const char* program = R"(
    a(x) -> exists y p(x, y).
    b(x) -> exists y p(x, y).
  )";
  constexpr int64_t kN = 300;
  auto load = [](FactDb* db) {
    for (int64_t i = 0; i < kN; ++i) {
      db->Add("a", {Value(i)});
      db->Add("b", {Value(i)});
    }
  };
  ChaseRun seq = RunRestricted(program, load, 1);
  const Relation* p = seq.db.Get("p");
  ASSERT_NE(p, nullptr);
  // One witness per x: the second rule's kN candidates were all satisfied
  // by nulls minted earlier in the same barrier.
  EXPECT_EQ(p->size(), static_cast<size_t>(kN));
  EXPECT_EQ(seq.stats.nulls_minted, static_cast<size_t>(kN));
  EXPECT_EQ(seq.stats.chase_recheck_drops, static_cast<size_t>(kN));
  for (size_t threads : {4u, 16u}) {
    ChaseRun par = RunRestricted(program, load, threads);
    ExpectBitIdentical(seq.db, par.db,
                       "threads=" + std::to_string(threads));
    EXPECT_EQ(par.stats.nulls_minted, static_cast<size_t>(kN));
    EXPECT_EQ(par.stats.chase_recheck_drops, static_cast<size_t>(kN));
  }
}

// Heads already satisfied by the extensional database are dropped by the
// read-only frozen screen in the workers, before any candidate is
// recorded.
TEST(ChaseParallelTest, FrozenScreenDropsSatisfiedHeads) {
  const char* program = "person(x) -> exists f father(x, f).";
  auto load = [](FactDb* db) {
    db->Add("person", {Value("bob")});
    db->Add("father", {Value("bob"), Value("abe")});
  };
  for (size_t threads : {1u, 8u}) {
    ChaseRun run = RunRestricted(program, load, threads);
    EXPECT_EQ(run.db.Get("father")->size(), 1u) << "threads " << threads;
    EXPECT_EQ(run.stats.nulls_minted, 0u) << "threads " << threads;
    EXPECT_EQ(run.stats.chase_screened, 1u) << "threads " << threads;
    EXPECT_EQ(run.stats.chase_candidates, 0u) << "threads " << threads;
  }
}

// A head mixing an explicit linker Skolem with an automatic null: Skolem
// ids come from the shared content-addressed table, null ids from the
// ordered replay; both must be independent of the worker count.
TEST(ChaseParallelTest, MixedNullAndSkolemHeadIsDeterministic) {
  const char* program =
      "n(x) -> exists e = skChase(x) exists o attr(x, e, o).";
  auto load = [](FactDb* db) {
    for (int64_t i = 0; i < 500; ++i) db->Add("n", {Value(i)});
  };
  ChaseRun seq = RunRestricted(program, load, 1);
  ASSERT_EQ(seq.db.Get("attr")->size(), 500u);
  EXPECT_EQ(seq.stats.nulls_minted, 500u);
  for (size_t threads : {4u, 16u}) {
    ChaseRun par = RunRestricted(program, load, threads);
    ExpectBitIdentical(seq.db, par.db,
                       "threads=" + std::to_string(threads));
  }
}

// Stratified aggregation feeding an existential head: group folds happen
// at the barrier in item order and the emissions replay through the same
// ordered candidate path.
TEST(ChaseParallelTest, StratifiedAggregateIntoExistentialHead) {
  const char* program = R"(
    w(g, v), t = sum(v, <g>) -> exists e total(g, t, e).
  )";
  auto load = [](FactDb* db) {
    Rng rng(88);
    for (int64_t i = 0; i < 4000; ++i) {
      auto g = static_cast<int64_t>(rng.NextBelow(41));
      double v = 0.001 * static_cast<double>(rng.NextBelow(100000));
      db->Add("w", {Value(g), Value(v)});
    }
  };
  ChaseRun seq = RunRestricted(program, load, 1);
  ASSERT_EQ(seq.db.Get("total")->size(), 41u);
  for (size_t threads : {4u, 16u}) {
    ChaseRun par = RunRestricted(program, load, threads);
    ExpectBitIdentical(seq.db, par.db,
                       "threads=" + std::to_string(threads));
  }
}

// Differential check against the pre-barrier implementation: the eager
// sequential chase (live head checks, inline minting — kept behind
// EngineOptions::legacy_sequential_chase as the benchmark baseline) must
// produce exactly the rows and null ids the barrier protocol produces.
TEST(ChaseParallelTest, LegacySequentialChaseMatchesBarrierChase) {
  const char* program = R"(
    edge(x, y) -> exists w rel(x, y, w).
    rel(x, y, w), edge(y, z) -> exists v rel(x, z, v).
  )";
  auto load = [](FactDb* db) {
    Rng rng(4242);
    for (int i = 0; i < 220; ++i) {
      auto a = static_cast<int64_t>(rng.NextBelow(70));
      auto b = static_cast<int64_t>(rng.NextBelow(70));
      db->Add("edge", {Value(a), Value(b)});
    }
  };
  ChaseRun legacy;
  load(&legacy.db);
  {
    auto parsed = ParseProgram(program);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EngineOptions options;
    options.chase_mode = ChaseMode::kRestricted;
    options.num_threads = 8;
    options.legacy_sequential_chase = true;
    Engine engine(std::move(parsed).value(), options);
    ASSERT_TRUE(engine.status().ok()) << engine.status().ToString();
    Status s = engine.Run(&legacy.db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    legacy.stats = engine.stats();
  }
  // The opt-in legacy path forces one worker and reports it as a fallback.
  EXPECT_EQ(legacy.stats.threads_used, 1u);
  EXPECT_EQ(legacy.stats.requested_threads, 8u);
  EXPECT_TRUE(legacy.stats.sequential_fallback);
  EXPECT_EQ(legacy.stats.chase_candidates, 0u);
  ASSERT_GT(legacy.stats.nulls_minted, 0u);
  for (size_t threads : {1u, 8u}) {
    ChaseRun barrier = RunRestricted(program, load, threads);
    EXPECT_FALSE(barrier.stats.sequential_fallback);
    ExpectBitIdentical(legacy.db, barrier.db,
                       "barrier threads=" + std::to_string(threads));
    EXPECT_EQ(barrier.stats.nulls_minted, legacy.stats.nulls_minted);
  }
}

// The Company-KG intensional programs under the restricted chase, end to
// end through Algorithm 2: derived edge sets must match the sequential
// run at every thread count.
class IntensionalRestrictedTest : public ::testing::Test {
 protected:
  static pg::PropertyGraph MakeData() {
    finkg::GeneratorConfig config;
    config.num_companies = 100;
    config.num_persons = 150;
    config.seed = 77;
    return finkg::ShareholdingNetwork::Generate(config).ToInstanceGraph();
  }

  static std::multiset<std::pair<pg::NodeId, pg::NodeId>> EdgeSet(
      const pg::PropertyGraph& g, const std::string& label) {
    std::multiset<std::pair<pg::NodeId, pg::NodeId>> out;
    for (pg::EdgeId e : g.EdgesWithLabel(label)) {
      out.emplace(g.edge(e).from, g.edge(e).to);
    }
    return out;
  }

  static void CheckProgram(const char* program,
                           const std::vector<std::string>& labels,
                           const std::vector<const char*>& prereqs = {}) {
    core::SuperSchema schema = finkg::CompanyKgSchema();
    pg::PropertyGraph seq = MakeData();
    instance::MaterializeOptions seq_opts;
    seq_opts.engine.chase_mode = ChaseMode::kRestricted;
    seq_opts.engine.num_threads = 1;
    for (const char* prereq : prereqs) {
      ASSERT_TRUE(instance::Materialize(schema, prereq, &seq, seq_opts).ok());
    }
    auto seq_stats = instance::Materialize(schema, program, &seq, seq_opts);
    ASSERT_TRUE(seq_stats.ok()) << seq_stats.status().ToString();
    for (size_t threads : {4u, 16u}) {
      pg::PropertyGraph par = MakeData();
      instance::MaterializeOptions par_opts;
      par_opts.engine.chase_mode = ChaseMode::kRestricted;
      par_opts.engine.num_threads = threads;
      for (const char* prereq : prereqs) {
        ASSERT_TRUE(
            instance::Materialize(schema, prereq, &par, seq_opts).ok());
      }
      auto par_stats = instance::Materialize(schema, program, &par, par_opts);
      ASSERT_TRUE(par_stats.ok()) << par_stats.status().ToString();
      for (const std::string& label : labels) {
        EXPECT_EQ(EdgeSet(seq, label), EdgeSet(par, label))
            << label << " at " << threads << " threads";
      }
    }
  }
};

TEST_F(IntensionalRestrictedTest, ControlProgramIsDeterministic) {
  CheckProgram(finkg::kControlProgram, {"CONTROLS"});
}

TEST_F(IntensionalRestrictedTest, CloseLinksProgramIsDeterministic) {
  CheckProgram(finkg::kCloseLinksProgram, {"IO", "CLOSE_LINK"},
               {finkg::kOwnsProgram});
}

}  // namespace
}  // namespace kgm::vadalog
