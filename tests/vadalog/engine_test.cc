#include "vadalog/engine.h"

#include <gtest/gtest.h>

#include "vadalog/parser.h"

namespace kgm::vadalog {
namespace {

FactDb RunOrDie(const std::string& src, FactDb db = FactDb(),
                EngineOptions options = {}) {
  Status s = RunProgram(src, &db, options);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return db;
}

size_t Count(const FactDb& db, const std::string& pred) {
  const Relation* rel = db.Get(pred);
  return rel == nullptr ? 0 : rel->size();
}

bool Has(const FactDb& db, const std::string& pred, Tuple t) {
  const Relation* rel = db.Get(pred);
  return rel != nullptr && rel->Contains(t);
}

TEST(EngineTest, SimpleProjection) {
  FactDb db = RunOrDie(R"(
    @fact parent("ann", "bob").
    @fact parent("bob", "cal").
    parent(x, y) -> child(y, x).
  )");
  EXPECT_EQ(Count(db, "child"), 2u);
  EXPECT_TRUE(Has(db, "child", {Value("bob"), Value("ann")}));
}

TEST(EngineTest, TransitiveClosure) {
  FactDb db = RunOrDie(R"(
    @fact edge(1, 2).
    @fact edge(2, 3).
    @fact edge(3, 4).
    edge(x, y) -> path(x, y).
    path(x, y), edge(y, z) -> path(x, z).
  )");
  EXPECT_EQ(Count(db, "path"), 6u);
  EXPECT_TRUE(Has(db, "path", {Value(int64_t{1}), Value(int64_t{4})}));
}

TEST(EngineTest, TransitiveClosureWithCycle) {
  FactDb db = RunOrDie(R"(
    @fact edge(1, 2).
    @fact edge(2, 3).
    @fact edge(3, 1).
    edge(x, y) -> path(x, y).
    path(x, y), edge(y, z) -> path(x, z).
  )");
  // Full closure of a 3-cycle: 9 pairs.
  EXPECT_EQ(Count(db, "path"), 9u);
}

TEST(EngineTest, NonLinearTransitiveClosure) {
  FactDb db = RunOrDie(R"(
    @fact edge(1, 2).
    @fact edge(2, 3).
    @fact edge(3, 4).
    @fact edge(4, 5).
    edge(x, y) -> path(x, y).
    path(x, y), path(y, z) -> path(x, z).
  )");
  EXPECT_EQ(Count(db, "path"), 10u);
}

TEST(EngineTest, JoinWithConstantsAndRepeatedVars) {
  FactDb db = RunOrDie(R"(
    @fact t(1, 1, "a").
    @fact t(1, 2, "b").
    @fact t(2, 2, "a").
    t(x, x, "a") -> diag(x).
  )");
  EXPECT_EQ(Count(db, "diag"), 2u);
  EXPECT_TRUE(Has(db, "diag", {Value(int64_t{1})}));
  EXPECT_TRUE(Has(db, "diag", {Value(int64_t{2})}));
}

TEST(EngineTest, StratifiedNegation) {
  FactDb db = RunOrDie(R"(
    @fact node(1).
    @fact node(2).
    @fact node(3).
    @fact marked(2).
    node(x), not marked(x) -> unmarked(x).
  )");
  EXPECT_EQ(Count(db, "unmarked"), 2u);
  EXPECT_FALSE(Has(db, "unmarked", {Value(int64_t{2})}));
}

TEST(EngineTest, NegationSeesFullLowerStratum) {
  // visited is derived; unvisited must see the *complete* visited relation.
  FactDb db = RunOrDie(R"(
    @fact edge(1, 2).
    @fact edge(2, 3).
    @fact node(1).
    @fact node(2).
    @fact node(3).
    @fact node(4).
    @fact start(1).
    start(x) -> reach(x).
    reach(x), edge(x, y) -> reach(y).
    node(x), not reach(x) -> unreached(x).
  )");
  EXPECT_EQ(Count(db, "unreached"), 1u);
  EXPECT_TRUE(Has(db, "unreached", {Value(int64_t{4})}));
}

TEST(EngineTest, AssignmentsAndConditions) {
  FactDb db = RunOrDie(R"(
    @fact m(2, 3).
    @fact m(5, 5).
    m(x, y), s = x * y, s > 10 -> big(x, y, s).
  )");
  EXPECT_EQ(Count(db, "big"), 1u);
  EXPECT_TRUE(Has(db, "big", {Value(int64_t{5}), Value(int64_t{5}),
                              Value(int64_t{25})}));
}

TEST(EngineTest, StratifiedSumAggregate) {
  FactDb db = RunOrDie(R"(
    @fact holds("ann", "acme", 0.4).
    @fact holds("bob", "acme", 0.3).
    @fact holds("ann", "emca", 0.9).
    holds(p, c, w), v = sum(w, <p>) -> total(c, v).
  )");
  EXPECT_EQ(Count(db, "total"), 2u);
  EXPECT_TRUE(Has(db, "total", {Value("acme"), Value(0.7)}));
  EXPECT_TRUE(Has(db, "total", {Value("emca"), Value(0.9)}));
}

TEST(EngineTest, StratifiedCountAndMinMax) {
  FactDb db = RunOrDie(R"(
    @fact holds("ann", "acme", 0.4).
    @fact holds("bob", "acme", 0.3).
    @fact holds("cyd", "acme", 0.2).
    holds(p, c, w), n = count(<p>) -> stakeholders(c, n).
    holds(p, c, w), lo = min(w, <p>), hi = max(w, <p>) -> range(c, lo, hi).
  )");
  EXPECT_TRUE(Has(db, "stakeholders", {Value("acme"), Value(int64_t{3})}));
  EXPECT_TRUE(
      Has(db, "range", {Value("acme"), Value(0.2), Value(0.4)}));
}

TEST(EngineTest, PackAggregateBuildsRecord) {
  FactDb db = RunOrDie(R"(
    @fact attr("n1", "name", "acme").
    @fact attr("n1", "year", "1999").
    attr(o, k, v), r = pack(k, v) -> packed(o, r).
  )");
  ASSERT_EQ(Count(db, "packed"), 1u);
  Value rec = MakeRecord({{"name", Value("acme")}, {"year", Value("1999")}});
  EXPECT_TRUE(Has(db, "packed", {Value("n1"), rec}));
}

// The paper's Example 4.2: company control.
//   (1) Company(x) -> CONTROLS(x, x).
//   (2) CONTROLS(x, z), Own(z, y, w), v = sum(w, <z>), v > 0.5
//         -> CONTROLS(x, y).
const char kControlProgram[] = R"(
  company(x) -> controls(x, x).
  controls(x, z), own(z, y, w), v = msum(w, <z>), v > 0.5
    -> controls(x, y).
)";

TEST(EngineTest, CompanyControlDirectMajority) {
  FactDb db;
  db.Add("company", {Value("a")});
  db.Add("company", {Value("b")});
  db.Add("own", {Value("a"), Value("b"), Value(0.6)});
  Status s = RunProgram(kControlProgram, &db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(Has(db, "controls", {Value("a"), Value("b")}));
}

TEST(EngineTest, CompanyControlNoMajority) {
  FactDb db;
  db.Add("company", {Value("a")});
  db.Add("company", {Value("b")});
  db.Add("own", {Value("a"), Value("b"), Value(0.5)});  // exactly 50%: no
  Status s = RunProgram(kControlProgram, &db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(Has(db, "controls", {Value("a"), Value("b")}));
}

TEST(EngineTest, CompanyControlJointControl) {
  // a owns 60% of b and 60% of c; b and c each own 30% of d.
  // a controls b and c, and jointly (30+30=60%) controls d, even though no
  // single company owns a majority of d.
  FactDb db;
  for (const char* c : {"a", "b", "c", "d"}) db.Add("company", {Value(c)});
  db.Add("own", {Value("a"), Value("b"), Value(0.6)});
  db.Add("own", {Value("a"), Value("c"), Value(0.6)});
  db.Add("own", {Value("b"), Value("d"), Value(0.3)});
  db.Add("own", {Value("c"), Value("d"), Value(0.3)});
  Status s = RunProgram(kControlProgram, &db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(Has(db, "controls", {Value("a"), Value("d")}));
  EXPECT_FALSE(Has(db, "controls", {Value("b"), Value("d")}));
  EXPECT_FALSE(Has(db, "controls", {Value("c"), Value("d")}));
}

TEST(EngineTest, CompanyControlTogetherWithSelf) {
  // a owns 30% of b directly and controls c which owns 25% of b:
  // jointly 55% -> a controls b ("possibly together with x itself").
  FactDb db;
  for (const char* c : {"a", "b", "c"}) db.Add("company", {Value(c)});
  db.Add("own", {Value("a"), Value("c"), Value(0.9)});
  db.Add("own", {Value("a"), Value("b"), Value(0.3)});
  db.Add("own", {Value("c"), Value("b"), Value(0.25)});
  Status s = RunProgram(kControlProgram, &db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(Has(db, "controls", {Value("a"), Value("b")}));
}

TEST(EngineTest, CompanyControlDeepChain) {
  // Chain of majority ownership: control propagates to the end.
  FactDb db;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    db.Add("company", {Value(int64_t{i})});
    if (i > 0) {
      db.Add("own",
             {Value(int64_t{i - 1}), Value(int64_t{i}), Value(0.51)});
    }
  }
  Status s = RunProgram(kControlProgram, &db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(Has(db, "controls", {Value(int64_t{0}), Value(int64_t{n - 1})}));
  // 0 controls everything: n facts (incl. itself); total = sum_{i} (n - i).
  EXPECT_EQ(Count(db, "controls"), static_cast<size_t>(n * (n + 1) / 2));
}

TEST(EngineTest, ExistentialSkolemMode) {
  FactDb db = RunOrDie(R"(
    @fact business("b1").
    @fact business("b2").
    business(x) -> exists c ctrl_edge(c, x, x).
  )");
  ASSERT_EQ(Count(db, "ctrl_edge"), 2u);
  // Skolem terms are deterministic: running twice adds nothing.
  FactDb db2 = std::move(db);
  Status s = RunProgram(R"(
    @fact business("b1").
    @fact business("b2").
    business(x) -> exists c ctrl_edge(c, x, x).
  )", &db2);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(Count(db2, "ctrl_edge"), 2u);
}

TEST(EngineTest, ExplicitLinkerSkolemFunctor) {
  FactDb db = RunOrDie(R"(
    @fact node("n1", 123).
    node(n, s) -> exists x = skNN(n) copied(x, n).
  )");
  ASSERT_EQ(Count(db, "copied"), 1u);
  const Tuple& t = db.Get("copied")->tuple(0);
  ASSERT_TRUE(t[0].is_skolem());
  EXPECT_EQ(SkolemTable::Global().FunctorOf(t[0].AsSkolem()), "skNN");
}

TEST(EngineTest, SkolemSharedAcrossRules) {
  // Two rules using the same functor and argument produce the same OID, so
  // the pieces they emit join up (the "linker" behaviour of Section 4).
  FactDb db = RunOrDie(R"(
    @fact n("a").
    n(x) -> exists p = skP(x) left(p, x).
    n(x) -> exists p = skP(x) right(p, x).
    left(p, x), right(p, y) -> joined(x, y).
  )");
  EXPECT_TRUE(Has(db, "joined", {Value("a"), Value("a")}));
}

TEST(EngineTest, RestrictedChaseDoesNotRefireSatisfiedHead) {
  // person(x) -> exists y father(x, y), person(y) would chase forever under
  // naive evaluation; the restricted check stops once the head is satisfied
  // by earlier nulls... here we use a finite variant: every person has a
  // parent, but a parent fact already exists for bob.
  FactDb db;
  db.Add("person", {Value("bob")});
  db.Add("father", {Value("bob"), Value("abe")});
  EngineOptions options;
  options.chase_mode = ChaseMode::kRestricted;
  Status s = RunProgram(R"(
    person(x) -> exists y father(x, y).
  )", &db, options);
  ASSERT_TRUE(s.ok()) << s.ToString();
  // Head already satisfied: no new fact, no labeled null.
  EXPECT_EQ(Count(db, "father"), 1u);
}

TEST(EngineTest, RestrictedChaseCreatesNullWhenNeeded) {
  FactDb db;
  db.Add("person", {Value("bob")});
  EngineOptions options;
  options.chase_mode = ChaseMode::kRestricted;
  Status s = RunProgram("person(x) -> exists y father(x, y).", &db, options);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(Count(db, "father"), 1u);
  EXPECT_TRUE(db.Get("father")->tuple(0)[1].is_labeled_null());
}

TEST(EngineTest, MultiAtomHeadSharesExistential) {
  FactDb db = RunOrDie(R"(
    @fact emp("ann").
    emp(x) -> exists d works_in(x, d), dept(d).
  )");
  ASSERT_EQ(Count(db, "works_in"), 1u);
  ASSERT_EQ(Count(db, "dept"), 1u);
  EXPECT_EQ(db.Get("works_in")->tuple(0)[1], db.Get("dept")->tuple(0)[0]);
}

TEST(EngineTest, FactBudgetStopsRunawayChase) {
  // Unbounded chase: each null spawns another.  The engine must stop with
  // ResourceExhausted rather than looping forever.
  FactDb db;
  db.Add("person", {Value("adam")});
  EngineOptions options;
  options.chase_mode = ChaseMode::kRestricted;
  options.max_facts = 1000;
  Status s = RunProgram(R"(
    person(x) -> exists y father(x, y).
    father(x, y) -> person(y).
  )", &db, options);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(EngineTest, SkolemChaseTerminatesOnFrontierRepetition) {
  // With frontier Skolemization the same frontier yields the same null, so
  // this program (non-terminating under the naive chase) converges: y is
  // sk(x), person(sk(x)) fires the first rule again but produces the same
  // term sk(sk(x))... this still diverges, so use the budget; but the
  // guarded variant below converges because the head is satisfied.
  FactDb db;
  db.Add("person", {Value("adam")});
  db.Add("has_father", {Value("adam")});
  Status s = RunProgram(R"(
    person(x), has_father(x) -> exists y father(x, y).
  )", &db);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(Count(db, "father"), 1u);
}

TEST(EngineTest, UnstratifiedProgramRejected) {
  FactDb db;
  Status s = RunProgram(R"(
    p(x), not q(x) -> q(x).
  )", &db);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, UnsafeProgramRejected) {
  FactDb db;
  Status s = RunProgram("p(x) -> q(x, y).", &db);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, ArityConflictRejected) {
  FactDb db;
  Status s = RunProgram("p(x) -> q(x). p(x, y) -> r(x).", &db);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, InputFactsFromDbAndProgramCombine) {
  FactDb db;
  db.Add("edge", {Value(int64_t{1}), Value(int64_t{2})});
  Status s = RunProgram(R"(
    @fact edge(2, 3).
    edge(x, y) -> path(x, y).
    path(x, y), edge(y, z) -> path(x, z).
  )", &db);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(Count(db, "path"), 3u);
}

TEST(EngineTest, BodylessFactRule) {
  FactDb db = RunOrDie(R"(
    p("a", 1).
    p(x, n) -> q(x).
  )");
  EXPECT_TRUE(Has(db, "q", {Value("a")}));
}

TEST(EngineTest, MonotonicCountInRecursion) {
  // Count distinct supporters accumulating through recursion: x is "popular"
  // once 2 distinct nodes point at it, and popularity spreads one step.
  FactDb db = RunOrDie(R"(
    @fact likes(1, 10).
    @fact likes(2, 10).
    @fact likes(10, 20).
    @fact likes(11, 20).
    likes(x, y), n = mcount(<x>), n >= 2 -> popular(y).
  )");
  EXPECT_TRUE(Has(db, "popular", {Value(int64_t{10})}));
  EXPECT_TRUE(Has(db, "popular", {Value(int64_t{20})}));
  EXPECT_FALSE(Has(db, "popular", {Value(int64_t{1})}));
}

TEST(EngineTest, EngineStatsPopulated) {
  Program program = ParseProgram(R"(
    @fact edge(1, 2).
    @fact edge(2, 3).
    edge(x, y) -> path(x, y).
    path(x, y), edge(y, z) -> path(x, z).
  )").value();
  Engine engine(std::move(program));
  ASSERT_TRUE(engine.status().ok());
  FactDb db;
  ASSERT_TRUE(engine.Run(&db).ok());
  EXPECT_GT(engine.stats().facts_derived, 0u);
  EXPECT_GT(engine.stats().rule_firings, 0u);
  EXPECT_GE(engine.stats().strata, 1);
}

}  // namespace
}  // namespace kgm::vadalog
