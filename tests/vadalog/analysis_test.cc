#include "vadalog/analysis.h"

#include <gtest/gtest.h>

#include "vadalog/parser.h"

namespace kgm::vadalog {
namespace {

Program P(const std::string& src) {
  auto program = ParseProgram(src);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

TEST(StratifyTest, LinearChain) {
  Program p = P(R"(
    a(x) -> b(x).
    b(x) -> c(x).
  )");
  auto s = Stratify(p);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_LT(s->SccOf("a"), s->SccOf("b"));
  EXPECT_LT(s->SccOf("b"), s->SccOf("c"));
  EXPECT_FALSE(s->rule_recursive[0]);
  EXPECT_FALSE(s->rule_recursive[1]);
}

TEST(StratifyTest, RecursionDetected) {
  Program p = P(R"(
    edge(x, y) -> path(x, y).
    path(x, y), edge(y, z) -> path(x, z).
  )");
  auto s = Stratify(p);
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s->rule_recursive[0]);
  EXPECT_TRUE(s->rule_recursive[1]);
  EXPECT_LT(s->SccOf("edge"), s->SccOf("path"));
}

TEST(StratifyTest, MutualRecursionSameScc) {
  Program p = P(R"(
    base(x) -> even(x).
    even(x), succ(x, y) -> odd(y).
    odd(x), succ(x, y) -> even(y).
  )");
  auto s = Stratify(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->SccOf("even"), s->SccOf("odd"));
}

TEST(StratifyTest, NegationAcrossStrataAllowed) {
  Program p = P(R"(
    node(x), not visited(x) -> unvisited(x).
    start(x) -> visited(x).
  )");
  EXPECT_TRUE(Stratify(p).ok());
}

TEST(StratifyTest, NegationInCycleRejected) {
  Program p = P(R"(
    p(x), not q(x) -> r(x).
    r(x) -> q(x).
  )");
  auto s = Stratify(p);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StratifyTest, MultiHeadForcesSameScc) {
  Program p = P(R"(
    a(x) -> b(x), c(x).
    c(x) -> d(x).
  )");
  auto s = Stratify(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->SccOf("b"), s->SccOf("c"));
}

TEST(StratifyTest, PackInsideRecursionAllowedMonotonically) {
  // pack() under recursion runs in monotonic mode (records grow as
  // contributions arrive); stratification accepts it.
  Program p = P(R"(
    p(x, n, v), r = pack(n, v) -> p(x, n, r).
  )");
  EXPECT_TRUE(Stratify(p).ok());
}

TEST(SafetyTest, UnboundHeadVariable) {
  Program p = P("p(x) -> q(x, y).");
  EXPECT_FALSE(ValidateSafety(p).ok());
}

TEST(SafetyTest, ExistentialMakesHeadVariableSafe) {
  Program p = P("p(x) -> exists y q(x, y).");
  EXPECT_TRUE(ValidateSafety(p).ok());
}

TEST(SafetyTest, NegationOnlyVariableUnsafe) {
  Program p = P("p(x), not q(x, y) -> r(x).");
  EXPECT_FALSE(ValidateSafety(p).ok());
}

TEST(SafetyTest, AnonymousInNegationIsFine) {
  Program p = P("p(x), not q(x, _) -> r(x).");
  EXPECT_TRUE(ValidateSafety(p).ok());
}

TEST(SafetyTest, ConditionVariableMustBeBound) {
  Program p = P("p(x), y > 1 -> q(x).");
  EXPECT_FALSE(ValidateSafety(p).ok());
}

TEST(SafetyTest, AssignmentBindsVariable) {
  Program p = P("p(x), y = x + 1, y > 1 -> q(y).");
  EXPECT_TRUE(ValidateSafety(p).ok());
}

TEST(SafetyTest, ExistentialMayNotAppearInBody) {
  Program p = P("p(x) -> exists x q(x).");
  EXPECT_FALSE(ValidateSafety(p).ok());
}

TEST(SafetyTest, UnusedExistentialRejected) {
  Program p = P("p(x) -> exists y q(x).");
  EXPECT_FALSE(ValidateSafety(p).ok());
}

TEST(SafetyTest, SkolemArgsMustBeBound) {
  Program p = P("p(x) -> exists y = sk(z) q(x, y).");
  EXPECT_FALSE(ValidateSafety(p).ok());
}

TEST(SafetyTest, AnonymousVariableInHeadRejected) {
  Program p = P("p(x) -> q(x, _).");
  EXPECT_FALSE(ValidateSafety(p).ok());
}

TEST(WardednessTest, DatalogProgramIsWarded) {
  Program p = P(R"(
    edge(x, y) -> path(x, y).
    path(x, y), edge(y, z) -> path(x, z).
  )");
  auto report = CheckWardedness(p);
  EXPECT_TRUE(report.warded);
  EXPECT_TRUE(report.affected.empty());
}

TEST(WardednessTest, AffectedPositionsComputed) {
  Program p = P(R"(
    person(x) -> exists y father(x, y).
    father(x, y) -> person(y).
  )");
  auto report = CheckWardedness(p);
  EXPECT_TRUE(report.warded);
  // father[1] hosts the existential; person[0] receives it via rule 2, and
  // from there the null flows back into father[0] through rule 1.
  EXPECT_TRUE(report.affected.count({"father", 1}) > 0);
  EXPECT_TRUE(report.affected.count({"person", 0}) > 0);
  EXPECT_TRUE(report.affected.count({"father", 0}) > 0);
}

TEST(WardednessTest, HarmlessJoinVariableKeepsProgramWarded) {
  // y also occurs at the non-affected position q[0], so it is harmless and
  // the join is allowed.
  Program p = P(R"(
    start(x) -> exists y p(x, y).
    p(x, y), q(y, z) -> p(y, z).
    p(x, y) -> q(x, y).
  )");
  auto report = CheckWardedness(p);
  EXPECT_TRUE(report.warded);
  EXPECT_TRUE(report.affected.count({"p", 1}) > 0);
  EXPECT_TRUE(report.affected.count({"q", 1}) > 0);
}

TEST(WardednessTest, JoinOnHarmfulVariableBreaksWardedness) {
  // y occurs only at affected positions (p[1] and q[1]) and reaches the
  // head, so it is dangerous; every candidate ward shares it with another
  // atom -> no ward exists.
  Program p = P(R"(
    start(x) -> exists y p(x, y).
    p(x, y) -> q(x, y).
    p(x, y), q(x2, y) -> r(y).
  )");
  auto report = CheckWardedness(p);
  EXPECT_FALSE(report.warded);
  EXPECT_FALSE(report.violations.empty());
}

TEST(PiecewiseLinearTest, LinearRecursionIsPwl) {
  Program p = P(R"(
    edge(x, y) -> path(x, y).
    path(x, y), edge(y, z) -> path(x, z).
  )");
  EXPECT_TRUE(IsPiecewiseLinear(p));
}

TEST(PiecewiseLinearTest, NonLinearRecursionIsNotPwl) {
  Program p = P(R"(
    edge(x, y) -> path(x, y).
    path(x, y), path(y, z) -> path(x, z).
  )");
  EXPECT_FALSE(IsPiecewiseLinear(p));
}

TEST(IsRecursiveTest, Basics) {
  EXPECT_FALSE(IsRecursive(P("a(x) -> b(x).")));
  EXPECT_TRUE(IsRecursive(P("a(x, y), a(y, z) -> a(x, z).")));
}

}  // namespace
}  // namespace kgm::vadalog
