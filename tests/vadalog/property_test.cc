// Property-based tests: the engine's results are compared against
// independent C++ oracles over randomized inputs (parameterized sweeps).

#include <gtest/gtest.h>

#include <map>
#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "base/rng.h"
#include "vadalog/engine.h"

namespace kgm::vadalog {
namespace {

using Edge = std::pair<int64_t, int64_t>;

std::vector<Edge> RandomEdges(size_t nodes, size_t edges, uint64_t seed) {
  Rng rng(seed);
  // A small graph cannot host more distinct edges than nodes^2.
  edges = std::min(edges, nodes * nodes / 2);
  std::set<Edge> out;
  while (out.size() < edges) {
    out.emplace(static_cast<int64_t>(rng.NextBelow(nodes)),
                static_cast<int64_t>(rng.NextBelow(nodes)));
  }
  return {out.begin(), out.end()};
}

// Oracle: transitive closure by iterated BFS.
std::set<Edge> ClosureOracle(size_t nodes, const std::vector<Edge>& edges) {
  std::vector<std::vector<int64_t>> adj(nodes);
  for (const Edge& e : edges) adj[e.first].push_back(e.second);
  std::set<Edge> closure;
  for (size_t start = 0; start < nodes; ++start) {
    std::vector<char> seen(nodes, 0);
    std::vector<int64_t> frontier{static_cast<int64_t>(start)};
    while (!frontier.empty()) {
      int64_t v = frontier.back();
      frontier.pop_back();
      for (int64_t w : adj[v]) {
        if (!seen[w]) {
          seen[w] = 1;
          closure.emplace(start, w);
          frontier.push_back(w);
        }
      }
    }
  }
  return closure;
}

class ClosureProperty
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {
};

TEST_P(ClosureProperty, EngineMatchesBfsOracle) {
  auto [nodes, edges, seed] = GetParam();
  std::vector<Edge> input = RandomEdges(nodes, edges, seed);
  FactDb db;
  for (const Edge& e : input) {
    db.Add("edge", {Value(e.first), Value(e.second)});
  }
  ASSERT_TRUE(RunProgram(R"(
    edge(x, y) -> path(x, y).
    path(x, y), edge(y, z) -> path(x, z).
  )", &db).ok());
  std::set<Edge> oracle = ClosureOracle(nodes, input);
  const Relation* path = db.Get("path");
  ASSERT_NE(path, nullptr);
  EXPECT_EQ(path->size(), oracle.size());
  for (const Tuple& t : path->tuples()) {
    EXPECT_TRUE(oracle.count({t[0].AsInt(), t[1].AsInt()}) > 0)
        << t[0].AsInt() << "->" << t[1].AsInt();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClosureProperty,
    ::testing::Combine(::testing::Values(size_t{8}, size_t{20}, size_t{50}),
                       ::testing::Values(size_t{10}, size_t{40}, size_t{90}),
                       ::testing::Values(uint64_t{1}, uint64_t{7},
                                         uint64_t{42})));

// Oracle for the company-control fixpoint (Example 4.2): for each company
// x grow the controlled set S from {x}, adding y when the companies of S
// jointly own > 50% of y.
std::set<Edge> ControlOracle(
    size_t companies, const std::map<Edge, double>& own) {
  std::set<Edge> result;
  for (size_t x = 0; x < companies; ++x) {
    std::set<int64_t> controlled{static_cast<int64_t>(x)};
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t y = 0; y < companies; ++y) {
        if (controlled.count(y) > 0) continue;
        double total = 0;
        for (int64_t z : controlled) {
          auto it = own.find({z, static_cast<int64_t>(y)});
          if (it != own.end()) total += it->second;
        }
        if (total > 0.5) {
          controlled.insert(y);
          changed = true;
        }
      }
    }
    for (int64_t y : controlled) result.emplace(x, y);
  }
  return result;
}

class ControlProperty
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(ControlProperty, EngineMatchesFixpointOracle) {
  auto [companies, seed] = GetParam();
  Rng rng(seed);
  std::map<Edge, double> own;
  // Random ownership with per-company totals <= 1.
  for (size_t y = 0; y < companies; ++y) {
    double budget = 1.0;
    size_t holders = 1 + rng.NextBelow(4);
    for (size_t k = 0; k < holders && budget > 0.05; ++k) {
      int64_t z = static_cast<int64_t>(rng.NextBelow(companies));
      if (z == static_cast<int64_t>(y)) continue;
      double w = budget * (0.2 + 0.6 * rng.NextDouble());
      own[{z, static_cast<int64_t>(y)}] += w;
      budget -= w;
    }
  }
  FactDb db;
  for (size_t c = 0; c < companies; ++c) {
    db.Add("company", {Value(static_cast<int64_t>(c))});
  }
  for (const auto& [edge, w] : own) {
    db.Add("own", {Value(edge.first), Value(edge.second), Value(w)});
  }
  ASSERT_TRUE(RunProgram(R"(
    company(x) -> controls(x, x).
    controls(x, z), own(z, y, w), v = msum(w, <z>), v > 0.5
      -> controls(x, y).
  )", &db).ok());
  std::set<Edge> oracle = ControlOracle(companies, own);
  const Relation* controls = db.Get("controls");
  ASSERT_NE(controls, nullptr);
  std::set<Edge> engine;
  for (const Tuple& t : controls->tuples()) {
    engine.emplace(t[0].AsInt(), t[1].AsInt());
  }
  EXPECT_EQ(engine, oracle);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ControlProperty,
    ::testing::Combine(::testing::Values(size_t{5}, size_t{15}, size_t{40},
                                         size_t{80}),
                       ::testing::Values(uint64_t{3}, uint64_t{11},
                                         uint64_t{2022})));

// Oracle for stratified sum group-by.
class AggregationProperty
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(AggregationProperty, SumMatchesGroupByOracle) {
  auto [rows, seed] = GetParam();
  Rng rng(seed);
  FactDb db;
  std::map<int64_t, double> oracle;
  for (size_t i = 0; i < rows; ++i) {
    int64_t p = static_cast<int64_t>(rng.NextBelow(rows / 2 + 1));
    int64_t c = static_cast<int64_t>(rng.NextBelow(rows / 4 + 1));
    double w = rng.NextDouble();
    if (db.Add("holds", {Value(p), Value(c), Value(w)})) {
      // A contribution is identified by (contributors, value): every
      // distinct (p, c, w) fact contributes once (see DESIGN.md).
      oracle[c] += w;
    }
  }
  ASSERT_TRUE(RunProgram(
      "holds(p, c, w), v = sum(w, <p>) -> total(c, v).", &db).ok());
  const Relation* total = db.Get("total");
  ASSERT_NE(total, nullptr);
  ASSERT_EQ(total->size(), oracle.size());
  for (const Tuple& t : total->tuples()) {
    auto it = oracle.find(t[0].AsInt());
    ASSERT_NE(it, oracle.end());
    EXPECT_NEAR(t[1].AsDouble(), it->second, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AggregationProperty,
    ::testing::Combine(::testing::Values(size_t{10}, size_t{100},
                                         size_t{1000}),
                       ::testing::Values(uint64_t{5}, uint64_t{77})));

// The same group-by oracle must hold under parallel evaluation, and the
// monotonic count's final prefix must match the set size regardless of the
// order work items fold contributions.
TEST_P(AggregationProperty, AggregatesMatchOracleInParallel) {
  auto [rows, seed] = GetParam();
  Rng rng(seed);
  FactDb db;
  std::map<int64_t, double> sum_oracle;
  std::map<int64_t, std::set<int64_t>> holders;
  for (size_t i = 0; i < rows; ++i) {
    int64_t p = static_cast<int64_t>(rng.NextBelow(rows / 2 + 1));
    int64_t c = static_cast<int64_t>(rng.NextBelow(rows / 4 + 1));
    double w = rng.NextDouble();
    if (db.Add("holds", {Value(p), Value(c), Value(w)})) {
      sum_oracle[c] += w;
      holders[c].insert(p);
    }
  }
  EngineOptions options;
  options.num_threads = 8;
  ASSERT_TRUE(RunProgram(R"(
    holds(p, c, w), v = sum(w, <p>) -> total(c, v).
    holds(p, c, _), n = mcount(<p>) -> stakeholders(c, n).
  )", &db, options).ok());
  const Relation* total = db.Get("total");
  ASSERT_NE(total, nullptr);
  ASSERT_EQ(total->size(), sum_oracle.size());
  for (const Tuple& t : total->tuples()) {
    auto it = sum_oracle.find(t[0].AsInt());
    ASSERT_NE(it, sum_oracle.end());
    EXPECT_NEAR(t[1].AsDouble(), it->second, 1e-9);
  }
  // mcount emits every prefix 1..N; the maximum per group is the count.
  const Relation* stakeholders = db.Get("stakeholders");
  ASSERT_NE(stakeholders, nullptr);
  std::map<int64_t, int64_t> max_count;
  for (const Tuple& t : stakeholders->tuples()) {
    max_count[t[0].AsInt()] =
        std::max(max_count[t[0].AsInt()], t[1].AsInt());
  }
  ASSERT_EQ(max_count.size(), holders.size());
  for (const auto& [c, members] : holders) {
    EXPECT_EQ(max_count[c], static_cast<int64_t>(members.size()))
        << "group " << c;
  }
}

// Chase modes agree on null-free derivations: for Datalog programs (no
// existentials) kSkolem and kRestricted must produce identical results.
class ChaseModeProperty
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(ChaseModeProperty, ModesAgreeOnDatalog) {
  auto [nodes, seed] = GetParam();
  std::vector<Edge> input = RandomEdges(nodes, nodes * 2, seed);
  const char* program = R"(
    edge(x, y) -> path(x, y).
    path(x, y), path(y, z) -> path(x, z).
  )";
  FactDb a;
  FactDb b;
  for (const Edge& e : input) {
    a.Add("edge", {Value(e.first), Value(e.second)});
    b.Add("edge", {Value(e.first), Value(e.second)});
  }
  EngineOptions restricted;
  restricted.chase_mode = ChaseMode::kRestricted;
  ASSERT_TRUE(RunProgram(program, &a).ok());
  ASSERT_TRUE(RunProgram(program, &b, restricted).ok());
  ASSERT_EQ(a.Get("path")->size(), b.Get("path")->size());
  for (const Tuple& t : a.Get("path")->tuples()) {
    EXPECT_TRUE(b.Get("path")->Contains(t));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChaseModeProperty,
    ::testing::Combine(::testing::Values(size_t{10}, size_t{30}),
                       ::testing::Values(uint64_t{1}, uint64_t{13})));

TEST(NullSemanticsTest, OrderingWithNullIsFalse) {
  FactDb db;
  db.Add("p", {Value(int64_t{1}), Value()});
  db.Add("p", {Value(int64_t{2}), Value(0.9)});
  ASSERT_TRUE(RunProgram("p(x, w), w > 0.5 -> big(x).", &db).ok());
  const Relation* big = db.Get("big");
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(big->size(), 1u);
  EXPECT_TRUE(big->Contains({Value(int64_t{2})}));
}

}  // namespace
}  // namespace kgm::vadalog
