// Incremental maintenance (vadalog/incremental.h): delta normalization,
// DRed overdelete/rederive/insert, per-stratum recomputation fallbacks,
// mode selection, and randomized differential checks against from-scratch
// materialization.

#include "vadalog/incremental.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "vadalog/database.h"
#include "vadalog/engine.h"
#include "vadalog/parser.h"

namespace kgm::vadalog {
namespace {

Program Parse(const std::string& src) {
  Result<Program> p = ParseProgram(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

Tuple T(std::initializer_list<int64_t> xs) {
  Tuple t;
  for (int64_t x : xs) t.emplace_back(x);
  return t;
}

Tuple Edge(int64_t a, int64_t b) { return T({a, b}); }

// Runs the program from scratch on a clone of `edb` and asserts equality
// with the maintained database.
void ExpectMatchesRebuild(const IncrementalView& view, const Program& program,
                          EngineOptions options, const std::string& where) {
  FactDb rebuilt = view.edb().Clone();
  Engine engine(program, options);
  ASSERT_TRUE(engine.status().ok()) << engine.status().ToString();
  ASSERT_TRUE(engine.Run(&rebuilt).ok()) << where;
  bool ordered = view.mode() != MaintenanceMode::kDRed;
  std::string diff;
  if (DescribeFirstDifference(view.db(), rebuilt, ordered, &diff)) {
    FAIL() << where << ": maintained database diverged ("
           << (ordered ? "ordered" : "set") << "): " << diff;
  }
}

const char* kClosure =
    "path(x,y) :- edge(x,y).\n"
    "path(x,z) :- path(x,y), edge(y,z).\n";

TEST(EdbDelta, TouchedPredicates) {
  EdbDelta delta;
  delta.inserts["edge"].push_back(Edge(1, 2));
  delta.deletes["node"].push_back(T({3}));
  delta.deletes["empty"];
  std::vector<std::string> touched = delta.TouchedPredicates();
  ASSERT_EQ(touched.size(), 2u);
  EXPECT_EQ(touched[0], "edge");
  EXPECT_EQ(touched[1], "node");
}

TEST(IncrementalView, ModeSelection) {
  EXPECT_EQ(IncrementalView(Parse(kClosure)).mode(), MaintenanceMode::kDRed);
  EXPECT_EQ(IncrementalView(
                Parse("t(x,v) :- e(x,y,w), v = msum(w).\n"))
                .mode(),
            MaintenanceMode::kRecomputeStrata);
  // Skolem existentials stay DRed-maintainable (content-addressed terms).
  EXPECT_EQ(IncrementalView(
                Parse("p(x) -> exists k = sk(x) q(x,k).\n"))
                .mode(),
            MaintenanceMode::kDRed);
  // Restricted-chase existentials force a full rerun (labeled nulls).
  EngineOptions restricted;
  restricted.chase_mode = ChaseMode::kRestricted;
  EXPECT_EQ(IncrementalView(Parse("p(x) -> exists k q(x,k).\n"), restricted)
                .mode(),
            MaintenanceMode::kFullRerun);
}

TEST(IncrementalView, InsertExtendsClosure) {
  Program program = Parse(kClosure);
  IncrementalView view(Parse(kClosure));
  ASSERT_TRUE(view.status().ok());
  FactDb edb;
  edb.Add("edge", Edge(1, 2));
  edb.Add("edge", Edge(2, 3));
  ASSERT_TRUE(view.Initialize(std::move(edb)).ok());
  EXPECT_EQ(view.db().Get("path")->size(), 3u);

  EdbDelta delta;
  delta.inserts["edge"].push_back(Edge(3, 4));
  ASSERT_TRUE(view.Apply(delta).ok());
  EXPECT_TRUE(view.db().Get("path")->Contains(Edge(1, 4)));
  EXPECT_EQ(view.db().Get("path")->size(), 6u);
  EXPECT_EQ(view.last_stats().mode, MaintenanceMode::kDRed);
  EXPECT_GT(view.last_stats().idb_inserted, 0u);
  EXPECT_TRUE(view.last_changed().count("path") > 0);
  EXPECT_TRUE(view.last_changed().count("edge") > 0);
  ExpectMatchesRebuild(view, program, {}, "insert 3->4");
}

TEST(IncrementalView, DeleteTriggersOverdeletion) {
  Program program = Parse(kClosure);
  IncrementalView view(Parse(kClosure));
  FactDb edb;
  edb.Add("edge", Edge(1, 2));
  edb.Add("edge", Edge(2, 3));
  edb.Add("edge", Edge(3, 4));
  ASSERT_TRUE(view.Initialize(std::move(edb)).ok());
  EXPECT_EQ(view.db().Get("path")->size(), 6u);

  EdbDelta delta;
  delta.deletes["edge"].push_back(Edge(2, 3));
  ASSERT_TRUE(view.Apply(delta).ok());
  // Only 1->2 and 3->4 survive.
  EXPECT_EQ(view.db().Get("path")->size(), 2u);
  EXPECT_FALSE(view.db().Get("path")->Contains(Edge(1, 3)));
  EXPECT_GT(view.last_stats().overdeleted, 0u);
  ExpectMatchesRebuild(view, program, {}, "delete 2->3");
}

TEST(IncrementalView, RederivationRescuesAlternativePath) {
  Program program = Parse(kClosure);
  IncrementalView view(Parse(kClosure));
  FactDb edb;
  // Two routes from 1 to 3; deleting one keeps path(1,3) derivable.
  edb.Add("edge", Edge(1, 2));
  edb.Add("edge", Edge(2, 3));
  edb.Add("edge", Edge(1, 3));
  ASSERT_TRUE(view.Initialize(std::move(edb)).ok());

  EdbDelta delta;
  delta.deletes["edge"].push_back(Edge(2, 3));
  ASSERT_TRUE(view.Apply(delta).ok());
  EXPECT_TRUE(view.db().Get("path")->Contains(Edge(1, 3)));
  EXPECT_GT(view.last_stats().rederived, 0u);
  ExpectMatchesRebuild(view, program, {}, "rederive 1->3");
}

TEST(IncrementalView, DeleteAndReinsertIsNoOp) {
  IncrementalView view(Parse(kClosure));
  FactDb edb;
  edb.Add("edge", Edge(1, 2));
  edb.Add("edge", Edge(2, 3));
  ASSERT_TRUE(view.Initialize(std::move(edb)).ok());

  EdbDelta delta;
  delta.deletes["edge"].push_back(Edge(1, 2));
  delta.inserts["edge"].push_back(Edge(1, 2));
  ASSERT_TRUE(view.Apply(delta).ok());
  EXPECT_EQ(view.last_stats().edb_deleted, 0u);
  EXPECT_EQ(view.last_stats().edb_inserted, 0u);
  EXPECT_TRUE(view.last_changed().empty());
  EXPECT_EQ(view.db().Get("path")->size(), 3u);
}

TEST(IncrementalView, DeleteAbsentAndInsertPresentAreIgnored) {
  IncrementalView view(Parse(kClosure));
  FactDb edb;
  edb.Add("edge", Edge(1, 2));
  ASSERT_TRUE(view.Initialize(std::move(edb)).ok());

  EdbDelta delta;
  delta.deletes["edge"].push_back(Edge(7, 8));
  delta.inserts["edge"].push_back(Edge(1, 2));
  ASSERT_TRUE(view.Apply(delta).ok());
  EXPECT_TRUE(view.last_changed().empty());
  EXPECT_EQ(view.db().Get("edge")->size(), 1u);
}

TEST(IncrementalView, ArityMismatchRejected) {
  IncrementalView view(Parse(kClosure));
  FactDb edb;
  edb.Add("edge", Edge(1, 2));
  ASSERT_TRUE(view.Initialize(std::move(edb)).ok());
  EdbDelta delta;
  delta.inserts["edge"].push_back(T({1, 2, 3}));
  Status status = view.Apply(delta);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(IncrementalView, NegationFallsBackToRecomputation) {
  const char* src =
      "reach(x,y) :- edge(x,y).\n"
      "reach(x,z) :- reach(x,y), edge(y,z).\n"
      "blocked(x,y) :- node(x), node(y), not reach(x,y).\n";
  Program program = Parse(src);
  IncrementalView view(Parse(src));
  ASSERT_EQ(view.mode(), MaintenanceMode::kDRed);
  FactDb edb;
  edb.Add("node", T({1}));
  edb.Add("node", T({2}));
  edb.Add("node", T({3}));
  edb.Add("edge", Edge(1, 2));
  ASSERT_TRUE(view.Initialize(std::move(edb)).ok());
  EXPECT_TRUE(view.db().Get("blocked")->Contains(Edge(1, 3)));

  EdbDelta delta;
  delta.inserts["edge"].push_back(Edge(2, 3));
  ASSERT_TRUE(view.Apply(delta).ok());
  // reach changed, so the stratum negating it recomputes.
  EXPECT_GT(view.last_stats().strata_recomputed, 0u);
  EXPECT_FALSE(view.db().Get("blocked")->Contains(Edge(1, 3)));
  ExpectMatchesRebuild(view, program, {}, "negation fallback");
}

TEST(IncrementalView, AggregateProgramRecomputesAffectedStrataOnly) {
  const char* src =
      "total(x,s) :- sale(x,v), s = sum(v, <x>).\n"
      "flag(x) :- other(x).\n";
  Program program = Parse(src);
  IncrementalView view(Parse(src));
  ASSERT_EQ(view.mode(), MaintenanceMode::kRecomputeStrata);
  FactDb edb;
  edb.Add("sale", Edge(1, 10));
  edb.Add("sale", Edge(1, 5));
  edb.Add("other", T({7}));
  ASSERT_TRUE(view.Initialize(std::move(edb)).ok());

  EdbDelta delta;
  delta.deletes["sale"].push_back(Edge(1, 5));
  ASSERT_TRUE(view.Apply(delta).ok());
  EXPECT_TRUE(view.db().Get("total")->Contains(Edge(1, 10)));
  EXPECT_FALSE(view.db().Get("total")->Contains(Edge(1, 15)));
  // The `flag` stratum is untouched by a `sale` delta.
  EXPECT_GT(view.last_stats().strata_skipped, 0u);
  EXPECT_EQ(view.last_changed().count("flag"), 0u);
  ExpectMatchesRebuild(view, program, {}, "aggregate recompute");
}

TEST(IncrementalView, SkolemHeadsMaintainedByDRed) {
  const char* src =
      "owner(x,y) :- own(x,y).\n"
      "owner(x,y) -> exists k = skC(x) ctrl(x,k,y).\n";
  Program program = Parse(src);
  IncrementalView view(Parse(src));
  ASSERT_EQ(view.mode(), MaintenanceMode::kDRed);
  FactDb edb;
  edb.Add("own", Edge(1, 2));
  edb.Add("own", Edge(1, 3));
  ASSERT_TRUE(view.Initialize(std::move(edb)).ok());
  EXPECT_EQ(view.db().Get("ctrl")->size(), 2u);

  EdbDelta delta;
  delta.deletes["own"].push_back(Edge(1, 3));
  delta.inserts["own"].push_back(Edge(4, 5));
  ASSERT_TRUE(view.Apply(delta).ok());
  ExpectMatchesRebuild(view, program, {}, "skolem delta");
}

TEST(IncrementalView, RestrictedChaseFallsBackToFullRerun) {
  const char* src = "p(x) -> exists k q(x,k).\n";
  Program program = Parse(src);
  EngineOptions options;
  options.chase_mode = ChaseMode::kRestricted;
  IncrementalView view(Parse(src), options);
  ASSERT_EQ(view.mode(), MaintenanceMode::kFullRerun);
  FactDb edb;
  edb.Add("p", T({1}));
  ASSERT_TRUE(view.Initialize(std::move(edb)).ok());

  EdbDelta delta;
  delta.inserts["p"].push_back(T({2}));
  ASSERT_TRUE(view.Apply(delta).ok());
  EXPECT_EQ(view.db().Get("q")->size(), 2u);
  ExpectMatchesRebuild(view, program, options, "restricted rerun");
}

// Randomized differential test over the transitive closure: a stream of
// mixed insert/delete batches, checked against a from-scratch rebuild
// after every batch, at 1 and 4 threads.
class RandomizedClosure : public ::testing::TestWithParam<size_t> {};

TEST_P(RandomizedClosure, MatchesRebuildAcrossBatches) {
  EngineOptions options;
  options.num_threads = GetParam();
  Program program = Parse(kClosure);
  IncrementalView view(Parse(kClosure), options);
  ASSERT_TRUE(view.status().ok());

  constexpr int64_t kNodes = 24;
  kgm::Rng rng(0xfeedface + GetParam());
  FactDb edb;
  std::vector<Tuple> live;
  for (int i = 0; i < 60; ++i) {
    Tuple e = Edge(static_cast<int64_t>(rng.NextBelow(kNodes)),
                   static_cast<int64_t>(rng.NextBelow(kNodes)));
    if (edb.Add("edge", Tuple(e))) live.push_back(e);
  }
  ASSERT_TRUE(view.Initialize(std::move(edb)).ok());

  for (int batch = 0; batch < 12; ++batch) {
    EdbDelta delta;
    size_t deletes = 1 + rng.NextBelow(3);
    for (size_t i = 0; i < deletes && !live.empty(); ++i) {
      size_t pick = rng.NextBelow(live.size());
      delta.deletes["edge"].push_back(live[pick]);
      live.erase(live.begin() + pick);
    }
    size_t inserts = 1 + rng.NextBelow(4);
    for (size_t i = 0; i < inserts; ++i) {
      Tuple e = Edge(static_cast<int64_t>(rng.NextBelow(kNodes)),
                     static_cast<int64_t>(rng.NextBelow(kNodes)));
      delta.inserts["edge"].push_back(e);
      bool have = false;
      for (const Tuple& t : live) have = have || t == e;
      if (!have) live.push_back(e);
    }
    ASSERT_TRUE(view.Apply(delta).ok()) << "batch " << batch;
    ExpectMatchesRebuild(view, program, options,
                         "batch " + std::to_string(batch));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, RandomizedClosure,
                         ::testing::Values<size_t>(1, 4));

TEST(DatabaseComparison, OrderedAndSetEquality) {
  FactDb a;
  a.Add("p", T({1}));
  a.Add("p", T({2}));
  FactDb b;
  b.Add("p", T({2}));
  b.Add("p", T({1}));
  EXPECT_TRUE(DatabasesEqualAsSets(a, b));
  EXPECT_FALSE(DatabasesEqualOrdered(a, b));
  EXPECT_TRUE(DatabasesEqualOrdered(a, a.Clone()));
  b.Add("p", T({3}));
  std::string diff;
  EXPECT_TRUE(DescribeFirstDifference(a, b, /*ordered=*/false, &diff));
  EXPECT_NE(diff.find("p"), std::string::npos);
}

}  // namespace
}  // namespace kgm::vadalog
