// Parallel semi-naive evaluation: the multi-threaded fixpoint must derive
// exactly the fact sets of the sequential legacy path (num_threads = 1),
// including under monotonic aggregation, negation, Skolem existentials and
// the Company-KG intensional programs.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "base/rng.h"
#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "instance/pipeline.h"
#include "vadalog/engine.h"
#include "vadalog/parser.h"

namespace kgm::vadalog {
namespace {

// Order-insensitive snapshot of one relation (parallel evaluation may
// insert facts in a different order than the sequential path).
std::multiset<std::string> FactSet(const FactDb& db, const std::string& pred) {
  std::multiset<std::string> out;
  const Relation* rel = db.Get(pred);
  if (rel == nullptr) return out;
  for (const Tuple& t : rel->tuples()) {
    std::string s;
    for (const Value& v : t) s += v.ToString() + "|";
    out.insert(std::move(s));
  }
  return out;
}

void ExpectSameFacts(const FactDb& a, const FactDb& b) {
  std::set<std::string> preds;
  for (const std::string& p : a.Predicates()) preds.insert(p);
  for (const std::string& p : b.Predicates()) preds.insert(p);
  for (const std::string& p : preds) {
    EXPECT_EQ(FactSet(a, p), FactSet(b, p)) << "relation " << p;
  }
}

FactDb RandomEdges(int64_t n, int64_t edges, uint64_t seed) {
  FactDb db;
  Rng rng(seed);
  for (int64_t i = 0; i < edges; ++i) {
    db.Add("edge", {Value(static_cast<int64_t>(rng.NextBelow(n))),
                    Value(static_cast<int64_t>(rng.NextBelow(n)))});
  }
  return db;
}

TEST(EngineParallelTest, TransitiveClosureMatchesSequential) {
  const char* program = R"(
    edge(x, y) -> path(x, y).
    path(x, y), edge(y, z) -> path(x, z).
  )";
  for (uint64_t seed : {1u, 2u, 3u}) {
    FactDb seq = RandomEdges(60, 150, seed);
    FactDb par = RandomEdges(60, 150, seed);
    EngineOptions seq_opts;
    seq_opts.num_threads = 1;
    EngineOptions par_opts;
    par_opts.num_threads = 8;
    ASSERT_TRUE(RunProgram(program, &seq, seq_opts).ok());
    ASSERT_TRUE(RunProgram(program, &par, par_opts).ok());
    ExpectSameFacts(seq, par);
  }
}

TEST(EngineParallelTest, NonLinearClosureMatchesSequential) {
  const char* program = R"(
    edge(x, y) -> path(x, y).
    path(x, y), path(y, z) -> path(x, z).
  )";
  FactDb seq = RandomEdges(40, 90, 7);
  FactDb par = RandomEdges(40, 90, 7);
  EngineOptions par_opts;
  par_opts.num_threads = 8;
  ASSERT_TRUE(RunProgram(program, &seq, {}).ok());
  ASSERT_TRUE(RunProgram(program, &par, par_opts).ok());
  ExpectSameFacts(seq, par);
}

TEST(EngineParallelTest, NegationAndStrataMatchSequential) {
  const char* program = R"(
    edge(x, y) -> reach(x, y).
    reach(x, y), edge(y, z) -> reach(x, z).
    edge(x, _) -> node(x).
    edge(_, y) -> node(y).
    node(x), node(y), not reach(x, y) -> unreach(x, y).
  )";
  FactDb seq = RandomEdges(30, 45, 11);
  FactDb par = RandomEdges(30, 45, 11);
  EngineOptions seq_opts;
  seq_opts.num_threads = 1;
  EngineOptions par_opts;
  par_opts.num_threads = 6;
  ASSERT_TRUE(RunProgram(program, &seq, seq_opts).ok());
  ASSERT_TRUE(RunProgram(program, &par, par_opts).ok());
  ExpectSameFacts(seq, par);
}

// Example 4.2 company control: recursion + monotonic msum + condition.
TEST(EngineParallelTest, CompanyControlMatchesSequential) {
  finkg::GeneratorConfig config;
  config.num_companies = 300;
  config.num_persons = 300;
  config.seed = 2022;
  finkg::ShareholdingNetwork net =
      finkg::ShareholdingNetwork::Generate(config);
  auto load = [&](FactDb* db) {
    for (uint32_t c = 0; c < config.num_companies; ++c) {
      db->Add("company", {Value(static_cast<int64_t>(c))});
    }
    for (const finkg::Holding& h : net.holdings()) {
      if (!net.IsCompany(h.holder)) continue;
      db->Add("own", {Value(static_cast<int64_t>(h.holder)),
                      Value(static_cast<int64_t>(h.company)), Value(h.pct)});
    }
  };
  const char* program = R"(
    company(x) -> controls(x, x).
    controls(x, z), own(z, y, w), v = msum(w, <z>), v > 0.5
      -> controls(x, y).
  )";
  FactDb seq;
  load(&seq);
  FactDb par;
  load(&par);
  EngineOptions seq_opts;
  seq_opts.num_threads = 1;
  EngineOptions par_opts;
  par_opts.num_threads = 8;
  ASSERT_TRUE(RunProgram(program, &seq, seq_opts).ok());
  ASSERT_TRUE(RunProgram(program, &par, par_opts).ok());
  EXPECT_EQ(FactSet(seq, "controls"), FactSet(par, "controls"));
}

TEST(EngineParallelTest, MonotonicCountMatchesSequential) {
  const char* program = R"(
    edge(x, y) -> reach(x, y).
    reach(x, y), edge(y, z) -> reach(x, z).
    reach(x, y), n = mcount(<y>) -> fanout(x, n).
  )";
  FactDb seq = RandomEdges(25, 60, 5);
  FactDb par = RandomEdges(25, 60, 5);
  EngineOptions seq_opts;
  seq_opts.num_threads = 1;
  EngineOptions par_opts;
  par_opts.num_threads = 8;
  ASSERT_TRUE(RunProgram(program, &seq, seq_opts).ok());
  ASSERT_TRUE(RunProgram(program, &par, par_opts).ok());
  ExpectSameFacts(seq, par);
}

TEST(EngineParallelTest, SkolemExistentialsMatchSequential) {
  // Skolem terms are content-addressed in a process-wide table, so the two
  // runs intern identical terms and the fact sets compare equal.
  const char* program = R"(
    node(x) -> exists e = sk_par(x) edge_of(e, x).
    edge_of(e, x) -> tagged(e).
  )";
  FactDb seq;
  FactDb par;
  for (int64_t i = 0; i < 200; ++i) {
    seq.Add("node", {Value(i)});
    par.Add("node", {Value(i)});
  }
  EngineOptions seq_opts;
  seq_opts.num_threads = 1;
  EngineOptions par_opts;
  par_opts.num_threads = 4;
  ASSERT_TRUE(RunProgram(program, &seq, seq_opts).ok());
  ASSERT_TRUE(RunProgram(program, &par, par_opts).ok());
  ExpectSameFacts(seq, par);
}

TEST(EngineParallelTest, RestrictedChaseRunsParallel) {
  FactDb db;
  db.Add("node", {Value(int64_t{1})});
  auto parsed = ParseProgram("node(x) -> exists e edge_of(e, x).");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Program program = std::move(parsed).value();
  EngineOptions options;
  options.chase_mode = ChaseMode::kRestricted;
  options.num_threads = 8;
  Engine engine(std::move(program), options);
  ASSERT_TRUE(engine.status().ok());
  ASSERT_TRUE(engine.Run(&db).ok());
  // The deterministic barrier chase keeps the requested pool: no forced
  // sequential fallback, and no resharding (every insert happens on the
  // driver during the ordered replay).
  EXPECT_EQ(engine.stats().threads_used, 8u);
  EXPECT_EQ(engine.stats().requested_threads, 8u);
  EXPECT_FALSE(engine.stats().sequential_fallback);
  EXPECT_EQ(engine.stats().shard_count, 1u);
  EXPECT_EQ(engine.stats().nulls_minted, 1u);
  EXPECT_EQ(engine.stats().chase_candidates, 1u);
}

TEST(EngineParallelTest, SkolemChaseDoesNotReportFallback) {
  FactDb db = RandomEdges(20, 40, 9);
  auto parsed = ParseProgram("edge(x, y) -> path(x, y).");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EngineOptions options;
  options.num_threads = 4;
  Engine engine(std::move(parsed).value(), options);
  ASSERT_TRUE(engine.status().ok());
  ASSERT_TRUE(engine.Run(&db).ok());
  EXPECT_EQ(engine.stats().threads_used, 4u);
  EXPECT_EQ(engine.stats().requested_threads, 4u);
  EXPECT_FALSE(engine.stats().sequential_fallback);
}

TEST(EngineParallelTest, StatsArePopulated) {
  FactDb db = RandomEdges(30, 60, 3);
  auto parsed = ParseProgram(R"(
    edge(x, y) -> path(x, y).
    path(x, y), edge(y, z) -> path(x, z).
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Program program = std::move(parsed).value();
  EngineOptions options;
  options.num_threads = 4;
  Engine engine(std::move(program), options);
  ASSERT_TRUE(engine.status().ok());
  ASSERT_TRUE(engine.Run(&db).ok());
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.threads_used, 4u);
  ASSERT_EQ(stats.rule_firings_by_rule.size(), 2u);
  ASSERT_EQ(stats.rule_probes_by_rule.size(), 2u);
  EXPECT_GT(stats.rule_firings_by_rule[0], 0u);
  EXPECT_GT(stats.rule_firings_by_rule[1], 0u);
  EXPECT_EQ(stats.rule_firings,
            stats.rule_firings_by_rule[0] + stats.rule_firings_by_rule[1]);
  EXPECT_GT(stats.join_probes, 0u);
  EXPECT_EQ(stats.stratum_seconds.size(), static_cast<size_t>(stats.strata));
  // Sharded-insert observability: every derived fact went through a shard,
  // and the per-shard histogram adds up to the accepted total.
  EXPECT_GT(stats.shard_count, 1u);
  EXPECT_EQ(stats.staged_inserts, stats.facts_derived);
  size_t by_shard_total = 0;
  for (size_t n : stats.inserts_by_shard) by_shard_total += n;
  EXPECT_EQ(by_shard_total, stats.staged_inserts);
}

TEST(EngineParallelTest, ExplicitShardCountIsHonored) {
  FactDb db = RandomEdges(30, 60, 3);
  auto parsed = ParseProgram(R"(
    edge(x, y) -> path(x, y).
    path(x, y), edge(y, z) -> path(x, z).
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EngineOptions options;
  options.num_threads = 4;
  options.num_shards = 5;  // rounded up to the next power of two
  Engine engine(std::move(parsed).value(), options);
  ASSERT_TRUE(engine.status().ok());
  ASSERT_TRUE(engine.Run(&db).ok());
  EXPECT_EQ(engine.stats().shard_count, 8u);
  EXPECT_EQ(db.default_shard_count(), 8u);
}

// A stratified (non-monotonic) float sum evaluated by parallel scan
// partitions plus the parallel group-emission round must be bit-identical
// to the sequential fold: same groups, same IEEE addition order.
TEST(EngineParallelTest, StratifiedFloatSumIsBitIdentical) {
  const char* program = R"(
    w(g, v), t = sum(v, <g>) -> total(g, t).
  )";
  auto load = [](FactDb* db) {
    Rng rng(417);
    for (int64_t i = 0; i < 4000; ++i) {
      int64_t g = static_cast<int64_t>(rng.NextBelow(37));
      // Sums of values at very different magnitudes: any reordering of the
      // fold shows up in the low mantissa bits.
      double v = (1.0 + static_cast<double>(rng.NextBelow(1000))) *
                 std::pow(10.0, static_cast<double>(rng.NextBelow(9)) - 4.0);
      db->Add("w", {Value(g), Value(v)});
    }
  };
  FactDb seq;
  load(&seq);
  EngineOptions seq_opts;
  seq_opts.num_threads = 1;
  ASSERT_TRUE(RunProgram(program, &seq, seq_opts).ok());
  for (size_t shards : {1u, 4u, 16u}) {
    FactDb par;
    load(&par);
    EngineOptions par_opts;
    par_opts.num_threads = 8;
    par_opts.num_shards = shards;
    ASSERT_TRUE(RunProgram(program, &par, par_opts).ok());
    const Relation* a = seq.Get("total");
    const Relation* b = par.Get("total");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(a->size(), b->size()) << "shards " << shards;
    ASSERT_GT(a->size(), 0u);
    // Compare Value-exact (operator== on doubles), not via ToString, so a
    // single flipped mantissa bit fails the test.
    for (const Tuple& t : a->tuples()) {
      EXPECT_TRUE(b->Contains(t))
          << "shards " << shards << ": missing " << t[0].ToString() << ", "
          << t[1].ToString();
    }
  }
}

// Regression: int64 sum/prod aggregates must report overflow instead of
// wrapping (signed overflow is UB).
TEST(EngineParallelTest, IntegerOverflowInSumAggregateIsAnError) {
  FactDb db;
  db.Add("w", {Value("a"), Value(int64_t{9223372036854775807LL})});
  db.Add("w", {Value("b"), Value(int64_t{9223372036854775807LL})});
  Status s = RunProgram("w(k, v), t = sum(v, <k>) -> total(t).", &db);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("overflow"), std::string::npos)
      << s.ToString();
}

TEST(EngineParallelTest, IntegerOverflowInProdAggregateIsAnError) {
  FactDb db;
  for (int64_t i = 2; i < 44; ++i) db.Add("w", {Value(i), Value(i)});
  Status s = RunProgram("w(k, v), t = prod(v, <k>) -> total(t).", &db);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("overflow"), std::string::npos)
      << s.ToString();
}

// The Company-KG intensional programs, end to end through Algorithm 2:
// the parallel engine must materialize the same derived edges.
class IntensionalParallelTest : public ::testing::Test {
 protected:
  static pg::PropertyGraph MakeData() {
    finkg::GeneratorConfig config;
    config.num_companies = 120;
    config.num_persons = 180;
    config.seed = 99;
    return finkg::ShareholdingNetwork::Generate(config).ToInstanceGraph();
  }

  static std::multiset<std::pair<pg::NodeId, pg::NodeId>> EdgeSet(
      const pg::PropertyGraph& g, const std::string& label) {
    std::multiset<std::pair<pg::NodeId, pg::NodeId>> out;
    for (pg::EdgeId e : g.EdgesWithLabel(label)) {
      out.emplace(g.edge(e).from, g.edge(e).to);
    }
    return out;
  }

  // Runs `program` once with num_threads = 1 and once with 8 threads at
  // each shard count in `shard_counts`, and demands identical edge sets.
  static void CheckProgram(const char* program,
                           const std::vector<std::string>& labels,
                           const std::vector<const char*>& prereqs = {},
                           const std::vector<size_t>& shard_counts = {0}) {
    core::SuperSchema schema = finkg::CompanyKgSchema();
    pg::PropertyGraph seq = MakeData();
    instance::MaterializeOptions seq_opts;
    seq_opts.engine.num_threads = 1;
    // Prerequisite components (e.g. OWNS before close links) run
    // sequentially on both graphs so the inputs are identical.
    for (const char* prereq : prereqs) {
      ASSERT_TRUE(instance::Materialize(schema, prereq, &seq, seq_opts).ok());
    }
    auto seq_stats = instance::Materialize(schema, program, &seq, seq_opts);
    ASSERT_TRUE(seq_stats.ok()) << seq_stats.status().ToString();
    for (size_t shards : shard_counts) {
      pg::PropertyGraph par = MakeData();
      instance::MaterializeOptions par_opts;
      par_opts.engine.num_threads = 8;
      par_opts.engine.num_shards = shards;
      for (const char* prereq : prereqs) {
        ASSERT_TRUE(
            instance::Materialize(schema, prereq, &par, seq_opts).ok());
      }
      auto par_stats = instance::Materialize(schema, program, &par, par_opts);
      ASSERT_TRUE(par_stats.ok()) << par_stats.status().ToString();
      EXPECT_EQ(par_stats->engine_stats.threads_used, 8u);
      for (const std::string& label : labels) {
        EXPECT_EQ(EdgeSet(seq, label), EdgeSet(par, label))
            << "label " << label << " shards " << shards;
        EXPECT_GT(EdgeSet(seq, label).size(), 0u) << "label " << label;
      }
    }
  }
};

TEST_F(IntensionalParallelTest, ControlProgramIsDeterministic) {
  CheckProgram(finkg::kControlProgram, {"CONTROLS"}, {}, {1, 4, 16});
}

TEST_F(IntensionalParallelTest, CloseLinksProgramIsDeterministic) {
  CheckProgram(finkg::kCloseLinksProgram, {"IO", "CLOSE_LINK"},
               {finkg::kOwnsProgram}, {1, 4, 16});
}

}  // namespace
}  // namespace kgm::vadalog
