// Magic-sets rewrite + QSQR top-down evaluation: every point-query mode
// must produce answer sets identical to filtering the full
// materialization by the binding — including Skolem terms, which the
// rewrite pins to the original program's auto functors.

#include "vadalog/magic/magic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "base/rng.h"
#include "vadalog/engine.h"
#include "vadalog/magic/point_query.h"
#include "vadalog/magic/qsqr.h"
#include "vadalog/parser.h"

namespace kgm::vadalog::magic {
namespace {

Program Parse(const std::string& src) {
  Result<Program> p = ParseProgram(src);
  EXPECT_TRUE(p.ok()) << p.status().message();
  return *p;
}

std::vector<Tuple> Sorted(std::vector<Tuple> ts) {
  std::sort(ts.begin(), ts.end(),
            [](const Tuple& a, const Tuple& b) {
              return std::lexicographical_compare(a.begin(), a.end(),
                                                  b.begin(), b.end());
            });
  return ts;
}

FactDb ChainDb(int64_t n) {
  FactDb db;
  for (int64_t i = 0; i + 1 < n; ++i) {
    db.Add("edge", {Value(i), Value(i + 1)});
  }
  return db;
}

// Random DAG-ish graph over int nodes.
FactDb RandomGraph(int64_t nodes, int64_t edges, uint64_t seed) {
  FactDb db;
  Rng rng(seed);
  for (int64_t i = 0; i < edges; ++i) {
    db.Add("edge", {Value(static_cast<int64_t>(rng.NextBelow(nodes))),
                    Value(static_cast<int64_t>(rng.NextBelow(nodes)))});
  }
  return db;
}

constexpr const char* kTc = R"(
  edge(x, y) -> path(x, y).
  path(x, y), edge(y, z) -> path(x, z).
)";

// Runs EvalPointQuery in the given mode configuration and as the
// materialize baseline on fresh clones, asserting set-identical answers.
std::vector<Tuple> ExpectMatchesBaseline(const std::string& src,
                                         const QueryBinding& query,
                                         const FactDb& db,
                                         PointQueryOptions options,
                                         PointQueryMode expect_mode,
                                         PointQueryStats* stats_out = nullptr) {
  Program program = Parse(src);
  FactDb magic_db = db.Clone();
  PointQueryStats stats;
  Result<std::vector<Tuple>> got =
      EvalPointQuery(program, query, &magic_db, options, &stats);
  EXPECT_TRUE(got.ok()) << got.status().message();
  EXPECT_EQ(stats.mode, expect_mode)
      << "mode=" << PointQueryModeName(stats.mode)
      << " fallback=" << FallbackReasonName(stats.fallback) << " "
      << stats.fallback_detail;

  PointQueryOptions base_options = options;
  base_options.force_materialize = true;
  base_options.force_qsqr = false;
  FactDb base_db = db.Clone();
  PointQueryStats base_stats;
  Result<std::vector<Tuple>> want =
      EvalPointQuery(program, query, &base_db, base_options, &base_stats);
  EXPECT_TRUE(want.ok()) << want.status().message();
  EXPECT_EQ(base_stats.mode, PointQueryMode::kMaterialize);

  EXPECT_EQ(Sorted(*got), Sorted(*want));
  if (stats_out != nullptr) *stats_out = stats;
  return *got;
}

TEST(ParseBoundArgsTest, ParsesKindsAndFreeMarkers) {
  auto r = ParseBoundArgs(R"(c12,_, 42,"a, \"b\"",true,3.5,x y)");
  ASSERT_TRUE(r.ok()) << r.status().message();
  ASSERT_EQ(r->size(), 7u);
  EXPECT_EQ((*r)[0], Value("c12"));
  EXPECT_FALSE((*r)[1].has_value());
  EXPECT_EQ((*r)[2], Value(int64_t{42}));
  EXPECT_EQ((*r)[3], Value("a, \"b\""));
  EXPECT_EQ((*r)[4], Value(true));
  EXPECT_EQ((*r)[5], Value(3.5));
  EXPECT_EQ((*r)[6], Value("x y"));
}

TEST(ParseBoundArgsTest, Errors) {
  EXPECT_FALSE(ParseBoundArgs("\"unterminated").ok());
  EXPECT_FALSE(ParseBoundArgs("a,,b").ok());
  EXPECT_TRUE(ParseBoundArgs("").ok());
  EXPECT_EQ(ParseBoundArgs("")->size(), 0u);
}

TEST(QueryBindingTest, CacheKeyIsCollisionFree) {
  auto key = [](std::optional<Value> v) {
    return QueryBinding{"p", {std::move(v)}}.CacheKey();
  };
  // Value equality is type-strict: 1, 1.0 and "1" have different answer
  // sets, so they must key differently even though ToString renders the
  // int and the double identically.
  EXPECT_EQ(Value(int64_t{1}).ToString(), Value(1.0).ToString());
  EXPECT_NE(key(Value(int64_t{1})), key(Value(1.0)));
  EXPECT_NE(key(Value(int64_t{1})), key(Value("1")));
  EXPECT_NE(key(Value(1.0)), key(Value("1")));
  EXPECT_NE(key(Value(true)), key(Value(int64_t{1})));
  // Distinct doubles that merge at default ostream precision (6
  // significant digits) stay distinct round-trip.
  EXPECT_EQ(Value(1234567.0).ToString(), Value(1234568.0).ToString());
  EXPECT_NE(key(Value(1234567.0)), key(Value(1234568.0)));
  EXPECT_EQ(key(Value(1234567.0)), key(Value(1234567.0)));
  // A free position is not the string "_", and a string imitating the
  // encoded structure is still just a string (length-prefixed).
  EXPECT_NE(key(std::nullopt), key(Value("_")));
  EXPECT_NE((QueryBinding{"p", {Value("a"), Value("b")}}.CacheKey()),
            (QueryBinding{"p", {Value("a,s1:b")}}.CacheKey()));
}

TEST(MagicRewriteTest, TransitiveClosureBoundSource) {
  Program program = Parse(kTc);
  QueryBinding q{"path", {Value(int64_t{0}), std::nullopt}};
  MagicRewrite rw = RewriteForQuery(program, q, {"edge"});
  ASSERT_TRUE(rw.ok()) << rw.detail;
  EXPECT_EQ(rw.query_pred, "path@bf");
  ASSERT_FALSE(rw.adorned.empty());
  EXPECT_EQ(rw.adorned[0].pred, "path");
  EXPECT_EQ(rw.adorned[0].adornment, "bf");
  EXPECT_EQ(rw.adorned[0].magic_pred, "m@path@bf");
  // Seed fact for the query constant.
  bool seeded = false;
  for (const FactDecl& f : rw.program.facts) {
    if (f.predicate == "m@path@bf") {
      seeded = true;
      ASSERT_EQ(f.values.size(), 1u);
      EXPECT_EQ(f.values[0], Value(int64_t{0}));
    }
  }
  EXPECT_TRUE(seeded);
  // The rewritten program passes full engine validation.
  Engine engine(rw.program);
  EXPECT_TRUE(engine.status().ok()) << engine.status().message();
}

TEST(PointQueryTest, MagicMatchesMaterializeOnRandomGraphs) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    FactDb db = RandomGraph(40, 120, seed);
    PointQueryStats stats;
    QueryBinding q{"path", {Value(int64_t{7}), std::nullopt}};
    ExpectMatchesBaseline(kTc, q, db, {}, PointQueryMode::kMagic, &stats);
    EXPECT_EQ(stats.engine.magic_rewrites, 1u);
    EXPECT_GT(stats.engine.magic_rules, 0u);
  }
}

TEST(PointQueryTest, MagicUsesFewerProbesThanMaterialize) {
  FactDb db = RandomGraph(120, 260, 42);
  Program program = Parse(kTc);
  QueryBinding q{"path", {Value(int64_t{3}), std::nullopt}};

  FactDb magic_db = db.Clone();
  PointQueryStats magic_stats;
  ASSERT_TRUE(
      EvalPointQuery(program, q, &magic_db, {}, &magic_stats).ok());
  ASSERT_EQ(magic_stats.mode, PointQueryMode::kMagic);

  PointQueryOptions base;
  base.force_materialize = true;
  FactDb base_db = db.Clone();
  PointQueryStats base_stats;
  ASSERT_TRUE(
      EvalPointQuery(program, q, &base_db, base, &base_stats).ok());
  EXPECT_LT(magic_stats.engine.join_probes, base_stats.engine.join_probes);
}

TEST(PointQueryTest, BoundSecondArgumentAndAllBoundBoolean) {
  FactDb db = ChainDb(30);
  // fb: which sources reach node 20?
  ExpectMatchesBaseline(
      kTc, QueryBinding{"path", {std::nullopt, Value(int64_t{20})}}, db, {},
      PointQueryMode::kMagic);
  // bb: boolean membership, both present and absent.
  auto yes = ExpectMatchesBaseline(
      kTc, QueryBinding{"path", {Value(int64_t{2}), Value(int64_t{20})}}, db,
      {}, PointQueryMode::kMagic);
  EXPECT_EQ(yes.size(), 1u);
  auto no = ExpectMatchesBaseline(
      kTc, QueryBinding{"path", {Value(int64_t{20}), Value(int64_t{2})}}, db,
      {}, PointQueryMode::kMagic);
  EXPECT_TRUE(no.empty());
}

TEST(PointQueryTest, EmptyAnswerForUnknownConstant) {
  FactDb db = ChainDb(10);
  auto rows = ExpectMatchesBaseline(
      kTc, QueryBinding{"path", {Value(int64_t{999}), std::nullopt}}, db, {},
      PointQueryMode::kMagic);
  EXPECT_TRUE(rows.empty());
}

TEST(PointQueryTest, BindingArityMismatchRejectedOnEveryRoute) {
  Program program = Parse(kTc);
  FactDb db = ChainDb(6);
  // path/2 bound with one argument: the magic route must report the
  // client error exactly like materialize instead of masking it as an
  // empty answer set (every mismatched rule would be skipped and the
  // adorned output relation would simply never exist).
  QueryBinding bad{"path", {Value(int64_t{0})}};
  for (bool force_materialize : {false, true}) {
    PointQueryOptions options;
    options.force_materialize = force_materialize;
    FactDb clone = db.Clone();
    PointQueryStats stats;
    Result<std::vector<Tuple>> r =
        EvalPointQuery(program, bad, &clone, options, &stats);
    ASSERT_FALSE(r.ok()) << "force_materialize=" << force_materialize;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // The extensional route agrees.
  QueryBinding bad_edb{"edge",
                       {Value(int64_t{0}), std::nullopt, std::nullopt}};
  FactDb clone = db.Clone();
  Result<std::vector<Tuple>> r =
      EvalPointQuery(program, bad_edb, &clone, {}, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(PointQueryTest, AssignmentsAndConditionsPropagateBindings) {
  const char* src = R"(
    edge(x, y), w = x + y, w > 2 -> weighted(x, y, w).
    weighted(x, y, w) -> reach(x, y).
    reach(x, y), weighted(y, z, w) -> reach(x, z).
  )";
  FactDb db = RandomGraph(30, 80, 9);
  ExpectMatchesBaseline(src,
                        QueryBinding{"reach", {Value(int64_t{5}), std::nullopt}},
                        db, {}, PointQueryMode::kMagic);
}

TEST(PointQueryTest, NegatedSubgoalsEvaluateFullRequired) {
  const char* src = R"(
    edge(x, y) -> path(x, y).
    path(x, y), edge(y, z) -> path(x, z).
    edge(x, y) -> linked(x, y).
    path(x, y), not linked(y, x) -> oneway(x, y).
  )";
  FactDb db = RandomGraph(25, 60, 4);
  PointQueryStats stats;
  ExpectMatchesBaseline(
      src, QueryBinding{"oneway", {Value(int64_t{3}), std::nullopt}}, db, {},
      PointQueryMode::kMagic, &stats);
  // `linked` sits under negation: its cone runs unguarded.
  Program program = Parse(src);
  MagicRewrite rw = RewriteForQuery(
      program, QueryBinding{"oneway", {Value(int64_t{3}), std::nullopt}},
      {"edge"});
  ASSERT_TRUE(rw.ok());
  EXPECT_NE(std::find(rw.full_required.begin(), rw.full_required.end(),
                      "linked"),
            rw.full_required.end());
}

TEST(PointQueryTest, SkolemExistentialsMatchFullRunValues) {
  // Auto and explicit Skolems: rewritten rule indices differ from the
  // original, so identical answers prove PinSkolemSpecs replicated the
  // original functors and frontier order.
  const char* src = R"(
    edge(x, y) -> exists o link(o, x, y).
    link(o, x, y), edge(y, z) -> exists p = skc(x, z) link(p, x, z).
  )";
  FactDb db = ChainDb(12);
  auto rows = ExpectMatchesBaseline(
      src, QueryBinding{"link", {std::nullopt, Value(int64_t{0}), std::nullopt}},
      db, {}, PointQueryMode::kMagic);
  ASSERT_FALSE(rows.empty());
  for (const Tuple& t : rows) {
    EXPECT_TRUE(t[0].is_skolem());
  }
}

TEST(PointQueryTest, MultiHeadRulesSplitSoundly) {
  const char* src = R"(
    edge(x, y) -> fwd(x, y), bwd(y, x).
    fwd(x, y), fwd(y, z) -> fwd(x, z).
  )";
  FactDb db = RandomGraph(20, 50, 11);
  ExpectMatchesBaseline(src,
                        QueryBinding{"fwd", {Value(int64_t{2}), std::nullopt}},
                        db, {}, PointQueryMode::kMagic);
  ExpectMatchesBaseline(src,
                        QueryBinding{"bwd", {Value(int64_t{2}), std::nullopt}},
                        db, {}, PointQueryMode::kMagic);
}

TEST(PointQueryTest, EdbPredicateAnswersByIndexLookup) {
  FactDb db = ChainDb(50);
  PointQueryStats stats;
  auto rows = ExpectMatchesBaseline(
      kTc, QueryBinding{"edge", {Value(int64_t{7}), std::nullopt}}, db, {},
      PointQueryMode::kEdbLookup, &stats);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value(int64_t{8}));
  EXPECT_LT(stats.engine.join_probes, 5u);
}

TEST(PointQueryTest, NoBoundArgumentFallsBackToMaterialize) {
  FactDb db = ChainDb(10);
  PointQueryStats stats;
  ExpectMatchesBaseline(kTc,
                        QueryBinding{"path", {std::nullopt, std::nullopt}}, db,
                        {}, PointQueryMode::kMaterialize, &stats);
  EXPECT_EQ(stats.fallback, FallbackReason::kNoBoundArgument);
  EXPECT_EQ(stats.engine.magic_fallbacks, 1u);
}

TEST(PointQueryTest, AggregatesFallBackWithReason) {
  const char* src = R"(
    edge(x, y) -> path(x, y).
    path(x, y), edge(y, z) -> path(x, z).
    path(x, y), n = mcount(<x>) -> fanout(x, n).
  )";
  FactDb db = ChainDb(8);
  PointQueryStats stats;
  ExpectMatchesBaseline(
      src, QueryBinding{"fanout", {Value(int64_t{0}), std::nullopt}}, db, {},
      PointQueryMode::kMaterialize, &stats);
  EXPECT_EQ(stats.fallback, FallbackReason::kAggregates);
  // But a query on the aggregate-free part of the program still magics.
  ExpectMatchesBaseline(src,
                        QueryBinding{"path", {Value(int64_t{0}), std::nullopt}},
                        db, {}, PointQueryMode::kMagic);
}

TEST(PointQueryTest, RestrictedChaseExistentialsFallBack) {
  const char* src = R"(
    edge(x, y) -> exists o link(o, x, y).
  )";
  FactDb db = ChainDb(5);
  PointQueryOptions options;
  options.engine.chase_mode = ChaseMode::kRestricted;
  Program program = Parse(src);
  FactDb run_db = db.Clone();
  PointQueryStats stats;
  auto rows = EvalPointQuery(
      program, QueryBinding{"link", {std::nullopt, Value(int64_t{1}), std::nullopt}},
      &run_db, options, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(stats.mode, PointQueryMode::kMaterialize);
  EXPECT_EQ(stats.fallback, FallbackReason::kRestrictedExistentials);
  EXPECT_EQ(rows->size(), 1u);
}

TEST(PointQueryTest, AdornmentExplosionTriggersQsqr) {
  // Querying `rpath` adorns both rpath@bf and path@fb; capping the
  // adorned set at one predicate forces the explosion fallback.
  const char* src = R"(
    edge(x, y) -> path(x, y).
    path(x, y), edge(y, z) -> path(x, z).
    path(y, x) -> rpath(x, y).
  )";
  PointQueryOptions options;
  options.rewrite.max_adorned_predicates = 1;  // force the explosion
  FactDb db = RandomGraph(25, 60, 8);
  PointQueryStats stats;
  ExpectMatchesBaseline(src,
                        QueryBinding{"rpath", {Value(int64_t{1}), std::nullopt}},
                        db, options, PointQueryMode::kQsqr, &stats);
  EXPECT_EQ(stats.fallback, FallbackReason::kAdornmentExplosion);
  EXPECT_GT(stats.engine.magic_subqueries, 0u);
}

TEST(QsqrTest, MatchesMaterializeAcrossBindingShapes) {
  PointQueryOptions options;
  options.force_qsqr = true;
  for (uint64_t seed : {5u, 6u}) {
    FactDb db = RandomGraph(35, 90, seed);
    ExpectMatchesBaseline(
        kTc, QueryBinding{"path", {Value(int64_t{4}), std::nullopt}}, db,
        options, PointQueryMode::kQsqr);
    ExpectMatchesBaseline(
        kTc, QueryBinding{"path", {std::nullopt, Value(int64_t{4})}}, db,
        options, PointQueryMode::kQsqr);
  }
  FactDb chain = ChainDb(20);
  auto yes = ExpectMatchesBaseline(
      kTc, QueryBinding{"path", {Value(int64_t{0}), Value(int64_t{19})}},
      chain, options, PointQueryMode::kQsqr);
  EXPECT_EQ(yes.size(), 1u);
}

TEST(QsqrTest, AssignmentsAndConditions) {
  const char* src = R"(
    edge(x, y), w = x * 10, w >= 0 -> hop(x, y, w).
    hop(x, y, w) -> reach(x, y).
    reach(x, y), hop(y, z, w) -> reach(x, z).
  )";
  PointQueryOptions options;
  options.force_qsqr = true;
  FactDb db = RandomGraph(20, 45, 12);
  ExpectMatchesBaseline(src,
                        QueryBinding{"reach", {Value(int64_t{1}), std::nullopt}},
                        db, options, PointQueryMode::kQsqr);
}

TEST(QsqrTest, RulesWith64PlusVariablesPlanCorrectly) {
  // 66 distinct variables: the head variable v65 lands at slot 65, past
  // the planner's 64-bit bound-slot mask.  Such slots must be presented
  // as free, not aliased onto low bits (`slot & 63` would tell the
  // planner slot 1 is a constant and mis-key the plan cache).
  std::string body;
  for (int i = 0; i < 65; ++i) {
    if (i) body += ", ";
    body += "edge(v" + std::to_string(i) + ", v" + std::to_string(i + 1) + ")";
  }
  std::string src = body + " -> wide(v65, v0).";
  // The bottom-up engine rejects >64-variable rules outright, so QSQR is
  // the only evaluator for this shape; assert exact answers instead of
  // the materialize baseline.  On the 0→66 chain, v0 ∈ {0, 1} derives
  // wide(65, 0) and wide(66, 1); binding v65 = 65 selects the first.
  Program program = Parse(src);
  FactDb db = ChainDb(67);
  PointQueryOptions options;
  options.force_qsqr = true;
  options.engine.plan_mode = PlanMode::kGreedy;
  PointQueryStats stats;
  Result<std::vector<Tuple>> got = EvalPointQuery(
      program, QueryBinding{"wide", {Value(int64_t{65}), std::nullopt}}, &db,
      options, &stats);
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_EQ(stats.mode, PointQueryMode::kQsqr)
      << FallbackReasonName(stats.fallback) << " " << stats.fallback_detail;
  ASSERT_EQ(got->size(), 1u);
  EXPECT_EQ((*got)[0], (Tuple{Value(int64_t{65}), Value(int64_t{0})}));
}

TEST(QsqrTest, SupportsRejectsOutOfFragment) {
  EXPECT_TRUE(QsqrEvaluator::Supports(Parse(kTc), "path"));
  EXPECT_FALSE(QsqrEvaluator::Supports(
      Parse("edge(x, y), not edge(y, x) -> asym(x, y)."), "asym"));
  EXPECT_FALSE(QsqrEvaluator::Supports(
      Parse("edge(x, y) -> exists o link(o, x, y)."), "link"));
  EXPECT_FALSE(QsqrEvaluator::Supports(
      Parse("edge(x, y), n = mcount(<x>) -> deg(x, n)."), "deg"));
  // Out-of-cone constructs don't matter.
  EXPECT_TRUE(QsqrEvaluator::Supports(
      Parse("edge(x, y) -> path(x, y).\n"
            "edge(x, y), n = mcount(<x>) -> deg(x, n)."),
      "path"));
}

TEST(PointQueryDeadlineTest, ExpiredDeadlineAndCancelPropagate) {
  FactDb db = RandomGraph(60, 150, 3);
  Program program = Parse(kTc);
  QueryBinding q{"path", {Value(int64_t{0}), std::nullopt}};

  PointQueryOptions expired;
  expired.engine.deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  FactDb db1 = db.Clone();
  PointQueryStats s1;
  auto r1 = EvalPointQuery(program, q, &db1, expired, &s1);
  EXPECT_EQ(r1.status().code(), StatusCode::kDeadlineExceeded);

  PointQueryOptions cancelled;
  cancelled.force_qsqr = true;
  auto flag = std::make_shared<std::atomic<bool>>(true);
  cancelled.engine.cancel = flag;
  FactDb db2 = db.Clone();
  PointQueryStats s2;
  auto r2 = EvalPointQuery(program, q, &db2, cancelled, &s2);
  EXPECT_EQ(r2.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(PointQueryTest, MultiThreadedMagicMatchesSingleThreaded) {
  FactDb db = RandomGraph(40, 110, 21);
  Program program = Parse(kTc);
  QueryBinding q{"path", {Value(int64_t{2}), std::nullopt}};
  std::vector<Tuple> single, multi;
  {
    FactDb d = db.Clone();
    PointQueryStats s;
    auto r = EvalPointQuery(program, q, &d, {}, &s);
    ASSERT_TRUE(r.ok());
    single = Sorted(*r);
  }
  {
    PointQueryOptions options;
    options.engine.num_threads = 4;
    FactDb d = db.Clone();
    PointQueryStats s;
    auto r = EvalPointQuery(program, q, &d, options, &s);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(s.mode, PointQueryMode::kMagic);
    multi = Sorted(*r);
  }
  EXPECT_EQ(single, multi);
}

TEST(MagicOpportunityTest, DetectsBeneficialAndFutileBindings) {
  // TC: bindings propagate into the recursion.
  MagicOpportunity tc = AnalyzeMagicOpportunity(Parse(kTc), "path");
  EXPECT_TRUE(tc.recursive_cone);
  EXPECT_TRUE(tc.beneficial);

  // The binding on `flag` never reaches the recursive `path` subgoal
  // (its variables are disjoint from the head's).
  MagicOpportunity futile = AnalyzeMagicOpportunity(
      Parse(R"(
        edge(x, y) -> path(x, y).
        path(x, y), edge(y, z) -> path(x, z).
        marker(m), path(a, b) -> flag(m).
      )"),
      "flag");
  EXPECT_TRUE(futile.recursive_cone);
  EXPECT_FALSE(futile.beneficial);

  // Aggregates in the cone report the fallback.
  MagicOpportunity agg = AnalyzeMagicOpportunity(
      Parse(R"(
        edge(x, y) -> path(x, y).
        path(x, y), edge(y, z) -> path(x, z).
        path(x, y), n = mcount(<x>) -> fanout(x, n).
      )"),
      "fanout");
  EXPECT_EQ(agg.fallback, FallbackReason::kAggregates);

  // Non-recursive cone: nothing to warn about.
  MagicOpportunity flat =
      AnalyzeMagicOpportunity(Parse("edge(x, y) -> hop(x, y)."), "hop");
  EXPECT_FALSE(flat.recursive_cone);
}

}  // namespace
}  // namespace kgm::vadalog::magic
