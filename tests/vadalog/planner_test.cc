// Cost-based join planning: greedy plans must change probe counts only,
// never output.  Materialization with plan_mode = kGreedy is required to be
// bit-identical to kOff at every thread count — including derived edge ids,
// which encode the emission order — over the Company-KG intensional
// programs; the planner's ordering, caching and replan behavior is unit
// tested directly against FactDb statistics.

#include "vadalog/planner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "instance/pipeline.h"
#include "vadalog/engine.h"
#include "vadalog/parser.h"

namespace kgm::vadalog {
namespace {

Tuple T(std::initializer_list<int64_t> values) {
  Tuple t;
  for (int64_t v : values) t.push_back(Value(v));
  return t;
}

// A closure workload whose written order is pathological: the label atom
// node(y) sits unbound before the edge atom that would bind y, so the
// written-order join scans all nodes per binding while a greedy plan probes
// the edge index first.
constexpr const char* kLabeledClosure = R"(
  node(x), node(y), edge(x, y) -> reach(x, y).
  node(x), node(z), reach(x, y), edge(y, z) -> reach(x, z).
)";

FactDb LabeledGraph(int64_t nodes, int64_t edges, uint64_t seed) {
  FactDb db;
  for (int64_t i = 0; i < nodes; ++i) db.Add("node", {Value(i)});
  Rng rng(seed);
  for (int64_t i = 0; i < edges; ++i) {
    db.Add("edge", {Value(static_cast<int64_t>(rng.NextBelow(nodes))),
                    Value(static_cast<int64_t>(rng.NextBelow(nodes)))});
  }
  return db;
}

// Emission order is a per-thread-count contract engine-wide (the parallel
// driver's partition boundaries scale with the worker count, so even
// plan-off output differs between worker counts); the planner must
// preserve each count's order exactly, so every comparison below pits
// greedy against off AT THE SAME thread count.
TEST(PlannerDeterminismTest, GreedyBitIdenticalToOffAtEveryThreadCount) {
  for (size_t threads : {1u, 4u, 16u}) {
    EngineOptions off;
    off.num_threads = threads;
    FactDb off_db = LabeledGraph(80, 200, 17);
    EngineStats off_stats;
    {
      Program p = ParseProgram(kLabeledClosure).value();
      Engine engine(std::move(p), off);
      ASSERT_TRUE(engine.Run(&off_db).ok());
      off_stats = engine.stats();
    }
    FactDb db = LabeledGraph(80, 200, 17);
    EngineOptions greedy = off;
    greedy.plan_mode = PlanMode::kGreedy;
    Program p = ParseProgram(kLabeledClosure).value();
    Engine engine(std::move(p), greedy);
    ASSERT_TRUE(engine.Run(&db).ok());
    // DebugString includes canonical row order, so this is bit-identity,
    // not set equality.
    EXPECT_EQ(db.DebugString(), off_db.DebugString()) << "threads " << threads;
    EXPECT_TRUE(engine.stats().planner_enabled);
    EXPECT_GT(engine.stats().plans_built, 0u);
    EXPECT_GT(engine.stats().plans_reordered, 0u);
    // The whole point: strictly fewer candidate rows examined.
    EXPECT_LT(engine.stats().join_probes, off_stats.join_probes)
        << "threads " << threads;
  }
}

TEST(PlannerDeterminismTest, GreedyBitIdenticalUnderRestrictedChase) {
  // Restricted-chase existential rules are excluded from reordering but
  // the rest of the program still plans; null ids must stay identical.
  const char* program = R"(
    node(x), node(y), edge(x, y) -> exists w owner(x, w), reach(x, y).
    node(x), node(z), reach(x, y), edge(y, z) -> reach(x, z).
  )";
  for (size_t threads : {1u, 4u}) {
    EngineOptions off;
    off.num_threads = threads;
    off.chase_mode = ChaseMode::kRestricted;
    FactDb reference = LabeledGraph(40, 90, 5);
    ASSERT_TRUE(RunProgram(program, &reference, off).ok());
    FactDb db = LabeledGraph(40, 90, 5);
    EngineOptions greedy = off;
    greedy.plan_mode = PlanMode::kGreedy;
    ASSERT_TRUE(RunProgram(program, &db, greedy).ok());
    EXPECT_EQ(db.DebugString(), reference.DebugString())
        << "threads " << threads;
  }
}

// The Company-KG programs end to end through the MTV pipeline: derived
// edge ids encode emission order, so comparing full edge sequences (id,
// endpoints) asserts bit-identity of the materialization.
class IntensionalPlannerTest : public ::testing::Test {
 protected:
  static pg::PropertyGraph MakeData() {
    finkg::GeneratorConfig config;
    config.num_companies = 100;
    config.num_persons = 150;
    config.seed = 2022;
    return finkg::ShareholdingNetwork::Generate(config).ToInstanceGraph();
  }

  static std::vector<std::tuple<pg::EdgeId, pg::NodeId, pg::NodeId>>
  EdgeSequence(const pg::PropertyGraph& g, const std::string& label) {
    std::vector<std::tuple<pg::EdgeId, pg::NodeId, pg::NodeId>> out;
    for (pg::EdgeId e : g.EdgesWithLabel(label)) {
      out.emplace_back(e, g.edge(e).from, g.edge(e).to);
    }
    return out;
  }

  static void CheckProgram(const char* program,
                           const std::vector<std::string>& labels,
                           const std::vector<const char*>& prereqs,
                           bool expect_reorder) {
    core::SuperSchema schema = finkg::CompanyKgSchema();
    // Emission order — and hence derived edge ids — is a per-thread-count
    // contract, so each greedy run compares against an off run at the SAME
    // thread count.  Prereq strata materialize identically on both sides
    // (single-threaded, plan off).
    instance::MaterializeOptions prereq_opts;
    prereq_opts.engine.num_threads = 1;
    for (size_t threads : {1u, 4u, 16u}) {
      pg::PropertyGraph off_graph = MakeData();
      instance::MaterializeOptions off_opts;
      off_opts.engine.num_threads = threads;
      for (const char* prereq : prereqs) {
        ASSERT_TRUE(
            instance::Materialize(schema, prereq, &off_graph, prereq_opts)
                .ok());
      }
      auto off_stats =
          instance::Materialize(schema, program, &off_graph, off_opts);
      ASSERT_TRUE(off_stats.ok()) << off_stats.status().ToString();

      pg::PropertyGraph g = MakeData();
      instance::MaterializeOptions opts = off_opts;
      opts.engine.plan_mode = PlanMode::kGreedy;
      for (const char* prereq : prereqs) {
        ASSERT_TRUE(
            instance::Materialize(schema, prereq, &g, prereq_opts).ok());
      }
      auto stats = instance::Materialize(schema, program, &g, opts);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_TRUE(stats->engine_stats.planner_enabled);
      if (expect_reorder) {
        EXPECT_GT(stats->engine_stats.plans_reordered, 0u)
            << "threads " << threads;
        EXPECT_LT(stats->engine_stats.join_probes,
                  off_stats->engine_stats.join_probes)
            << "threads " << threads;
      }
      for (const std::string& label : labels) {
        EXPECT_EQ(EdgeSequence(g, label), EdgeSequence(off_graph, label))
            << "label " << label << " threads " << threads;
        EXPECT_GT(EdgeSequence(g, label).size(), 0u) << "label " << label;
      }
    }
  }
};

TEST_F(IntensionalPlannerTest, ControlProgramBitIdentical) {
  // The control program's strata are aggregate-heavy (monotonic msum), so
  // most rules only get index-vs-scan selection — output must still match.
  CheckProgram(finkg::kControlProgram, {"CONTROLS"}, {},
               /*expect_reorder=*/false);
}

TEST_F(IntensionalPlannerTest, CloseLinksProgramBitIdenticalAndCheaper) {
  CheckProgram(finkg::kCloseLinksProgram, {"IO", "CLOSE_LINK"},
               {finkg::kOwnsProgram}, /*expect_reorder=*/true);
}

// --- planner unit tests ------------------------------------------------------

// Three-literal shape mirroring an MTV-translated relationship rule:
// label_a(x), label_b(y), rel(x, y) with rel selective through its index.
std::vector<RuleDesc> LabelEdgeRule() {
  RuleDesc d;
  d.rule_index = 0;
  d.positives.push_back(PlanLiteral{"label_a", {PlanArg{false, 0}}});
  d.positives.push_back(PlanLiteral{"label_b", {PlanArg{false, 1}}});
  d.positives.push_back(
      PlanLiteral{"rel", {PlanArg{false, 0}, PlanArg{false, 1}}});
  d.reorderable = true;
  return {d};
}

FactDb LabelEdgeDb(int64_t labels, int64_t edges) {
  FactDb db;
  for (int64_t i = 0; i < labels; ++i) {
    db.Add("label_a", {Value(i)});
    db.Add("label_b", {Value(i)});
  }
  for (int64_t i = 0; i < edges; ++i) {
    db.Add("rel", {Value(i % labels), Value((i * 7) % labels)});
  }
  return db;
}

TEST(JoinPlannerTest, GreedyMovesEdgeBeforeUnboundLabel) {
  FactDb db = LabelEdgeDb(500, 800);
  JoinPlanner planner(PlanMode::kGreedy, LabelEdgeRule());
  const JoinPlan* plan =
      planner.PlanFor(0, PlanRegime::kFull, -1, db, nullptr);
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->order.size(), 3u);
  // kFull pins written literal 0; the edge atom (written index 2) must
  // come before the unbound label_b scan (written index 1).
  EXPECT_EQ(plan->order[0].literal, 0u);
  EXPECT_EQ(plan->order[1].literal, 2u);
  EXPECT_EQ(plan->order[2].literal, 1u);
  EXPECT_TRUE(plan->reordered);
  EXPECT_LT(plan->est_probes, plan->est_probes_written);
  // The edge probe is indexed on x (bit 0); label_b is fully bound by then.
  EXPECT_EQ(plan->order[1].mask, uint64_t{1});
  EXPECT_TRUE(plan->order[1].use_index);
}

TEST(JoinPlannerTest, OffModeAndIneligibleRulesReturnUsablePlans) {
  FactDb db = LabelEdgeDb(50, 80);
  JoinPlanner off(PlanMode::kOff, LabelEdgeRule());
  EXPECT_EQ(off.PlanFor(0, PlanRegime::kFull, -1, db, nullptr), nullptr);

  std::vector<RuleDesc> rules = LabelEdgeRule();
  rules[0].reorderable = false;
  JoinPlanner greedy(PlanMode::kGreedy, std::move(rules));
  const JoinPlan* plan =
      greedy.PlanFor(0, PlanRegime::kFull, -1, db, nullptr);
  ASSERT_NE(plan, nullptr);
  EXPECT_FALSE(plan->reordered);
  for (size_t i = 0; i < plan->order.size(); ++i) {
    EXPECT_EQ(plan->order[i].literal, i);
  }
}

TEST(JoinPlannerTest, CacheHitsAndSizeDriftReplans) {
  FactDb db = LabelEdgeDb(100, 200);
  JoinPlanner planner(PlanMode::kGreedy, LabelEdgeRule());
  const JoinPlan* p1 =
      planner.PlanFor(0, PlanRegime::kFull, -1, db, nullptr);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(planner.plans_built(), 1u);
  EXPECT_EQ(planner.PlanFor(0, PlanRegime::kFull, -1, db, nullptr), p1);
  EXPECT_EQ(planner.cache_hits(), 1u);
  EXPECT_EQ(planner.replans(), 0u);
  // Grow rel past the 2x + 16 drift threshold: the cached plan rebuilds.
  Relation* rel = db.GetMutable("rel");
  ASSERT_NE(rel, nullptr);
  for (int64_t i = 0; i < 500; ++i) rel->Insert(T({i + 1000, i + 2000}));
  planner.PlanFor(0, PlanRegime::kFull, -1, db, nullptr);
  EXPECT_EQ(planner.replans(), 1u);
  EXPECT_EQ(planner.plans_built(), 2u);
}

TEST(JoinPlannerTest, StaleStatsAfterEraseForceReplanAndRefresh) {
  FactDb db = LabelEdgeDb(100, 200);
  JoinPlanner planner(PlanMode::kGreedy, LabelEdgeRule());
  planner.PlanFor(0, PlanRegime::kFull, -1, db, nullptr);
  Relation* rel = db.GetMutable("rel");
  ASSERT_NE(rel, nullptr);
  rel->EraseTuples({rel->tuple(0)});
  ASSERT_TRUE(rel->stats_stale());
  planner.PlanFor(0, PlanRegime::kFull, -1, db, nullptr);
  EXPECT_EQ(planner.replans(), 1u);
  // PlanFor refreshed the registers as a side effect.
  EXPECT_FALSE(rel->stats_stale());
}

TEST(JoinPlannerTest, DeltaScanPinsDeltaLiteralOutermost) {
  FactDb db = LabelEdgeDb(500, 800);
  Relation delta(2);
  delta.Insert(T({3, 21}));
  delta.Insert(T({4, 28}));
  JoinPlanner planner(PlanMode::kGreedy, LabelEdgeRule());
  const JoinPlan* plan =
      planner.PlanFor(0, PlanRegime::kDeltaScan, 2, db, &delta);
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->order.size(), 3u);
  EXPECT_EQ(plan->order[0].literal, 2u);  // delta first
  // Both labels are bound once the delta row binds x and y.
  EXPECT_EQ(plan->order[1].mask, uint64_t{1});
  EXPECT_EQ(plan->order[2].mask, uint64_t{1});
}

TEST(JoinPlannerTest, DeltaPreboundTreatsDeltaSlotsAsBound) {
  FactDb db = LabelEdgeDb(500, 800);
  Relation delta(2);
  delta.Insert(T({3, 21}));
  JoinPlanner planner(PlanMode::kGreedy, LabelEdgeRule());
  const JoinPlan* plan =
      planner.PlanFor(0, PlanRegime::kDeltaPrebound, 2, db, &delta);
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->order.size(), 3u);
  EXPECT_EQ(plan->order[0].literal, 2u);
  // The delta literal is a fully bound containment probe.
  EXPECT_EQ(plan->order[0].mask, uint64_t{3});
  EXPECT_LE(plan->order[0].est_rows, 1.0);
}

// DeltaEvaluator under greedy planning: rule-at-a-time emissions must match
// the written-order evaluator exactly (the DRed maintainer depends on it).
TEST(PlannerDeltaEvaluatorTest, EvalRuleDeltaMatchesOffMode) {
  const char* program = R"(
    node(x), node(z), reach(x, y), edge(y, z) -> reach(x, z).
  )";
  auto run = [&](PlanMode mode, std::vector<std::string>* emissions) {
    FactDb db = LabeledGraph(60, 140, 9);
    EngineOptions base;
    base.num_threads = 1;
    ASSERT_TRUE(RunProgram(kLabeledClosure, &db, base).ok())
        << "seed materialization failed";
    EngineOptions opts;
    opts.plan_mode = mode;
    Engine engine(ParseProgram(program).value(), opts);
    ASSERT_TRUE(engine.status().ok());
    DeltaEvaluator eval(&engine, &db);
    ASSERT_TRUE(eval.status().ok());
    std::map<std::string, Relation> delta_rels;
    Relation& delta = delta_rels.emplace("reach", Relation(2)).first->second;
    for (int64_t i = 0; i < 10; ++i) delta.Insert(T({i, (i * 3) % 60}));
    ASSERT_TRUE(eval.EvalRuleDelta(0, 2, delta_rels,
                                   [&](const std::string& pred, Tuple t) {
                                     std::string s = pred;
                                     for (const Value& v : t) {
                                       s += "|" + v.ToString();
                                     }
                                     emissions->push_back(std::move(s));
                                   })
                    .ok());
  };
  std::vector<std::string> off;
  std::vector<std::string> greedy;
  run(PlanMode::kOff, &off);
  run(PlanMode::kGreedy, &greedy);
  EXPECT_FALSE(off.empty());
  EXPECT_EQ(off, greedy);  // same emissions in the same order
}

}  // namespace
}  // namespace kgm::vadalog
