#include "vadalog/database.h"

#include <gtest/gtest.h>

namespace kgm::vadalog {
namespace {

Tuple T(std::initializer_list<int64_t> values) {
  Tuple t;
  for (int64_t v : values) t.push_back(Value(v));
  return t;
}

TEST(RelationTest, InsertDeduplicates) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert(T({1, 2})));
  EXPECT_FALSE(rel.Insert(T({1, 2})));
  EXPECT_TRUE(rel.Insert(T({2, 1})));
  EXPECT_EQ(rel.size(), 2u);
}

TEST(RelationTest, Contains) {
  Relation rel(2);
  rel.Insert(T({1, 2}));
  EXPECT_TRUE(rel.Contains(T({1, 2})));
  EXPECT_FALSE(rel.Contains(T({2, 2})));
}

TEST(RelationTest, MaskedLookup) {
  Relation rel(3);
  rel.Insert(T({1, 10, 100}));
  rel.Insert(T({1, 20, 200}));
  rel.Insert(T({2, 10, 300}));
  // Lookup on first position.
  Tuple probe = T({1, 0, 0});
  const auto& rows = rel.Lookup(0b001, probe);
  size_t matches = 0;
  for (uint32_t r : rows) {
    if (rel.MatchesMasked(r, 0b001, probe)) ++matches;
  }
  EXPECT_EQ(matches, 2u);
}

TEST(RelationTest, IndexMaintainedAcrossInserts) {
  Relation rel(2);
  rel.Insert(T({1, 10}));
  Tuple probe = T({1, 0});
  EXPECT_EQ(rel.Lookup(0b01, probe).size(), 1u);
  // Insert after the index is built: index must pick it up.
  rel.Insert(T({1, 20}));
  EXPECT_EQ(rel.Lookup(0b01, probe).size(), 2u);
}

TEST(RelationTest, MultiPositionMask) {
  Relation rel(3);
  rel.Insert(T({1, 10, 100}));
  rel.Insert(T({1, 10, 200}));
  rel.Insert(T({1, 20, 300}));
  Tuple probe = T({1, 10, 0});
  const auto& rows = rel.Lookup(0b011, probe);
  size_t matches = 0;
  for (uint32_t r : rows) {
    if (rel.MatchesMasked(r, 0b011, probe)) ++matches;
  }
  EXPECT_EQ(matches, 2u);
}

TEST(FactDbTest, GetOrCreateAndAdd) {
  FactDb db;
  EXPECT_EQ(db.Get("p"), nullptr);
  EXPECT_TRUE(db.Add("p", T({1, 2})));
  EXPECT_FALSE(db.Add("p", T({1, 2})));
  ASSERT_NE(db.Get("p"), nullptr);
  EXPECT_EQ(db.Get("p")->size(), 1u);
  EXPECT_EQ(db.TotalFacts(), 1u);
  EXPECT_EQ(db.Predicates(), (std::vector<std::string>{"p"}));
}

TEST(FactDbTest, DebugStringListsFacts) {
  FactDb db;
  db.Add("edge", {Value("a"), Value("b")});
  std::string s = db.DebugString();
  EXPECT_EQ(s, "edge(\"a\",\"b\")\n");
}

TEST(TupleHashTest, MaskedHashIgnoresUnmaskedPositions) {
  Tuple a = T({1, 999});
  Tuple b = T({1, 123});
  EXPECT_EQ(HashTupleMasked(a, 0b01), HashTupleMasked(b, 0b01));
  EXPECT_NE(HashTuple(a), HashTuple(b));
}

TEST(TupleHashTest, TupleHasherMatchesFreeFunctions) {
  Tuple t;
  t.push_back(Value("alpha"));
  t.push_back(Value(int64_t{42}));
  t.push_back(Value(3.25));
  TupleHasher hasher(t);
  EXPECT_EQ(hasher.full(), HashTuple(t));
  for (uint64_t mask = 0; mask < 8; ++mask) {
    EXPECT_EQ(hasher.Masked(mask), HashTupleMasked(t, mask)) << mask;
  }
  // Arities past the inline buffer take the heap path.
  Tuple wide;
  for (int64_t i = 0; i < 20; ++i) wide.push_back(Value(i));
  TupleHasher wide_hasher(wide);
  EXPECT_EQ(wide_hasher.full(), HashTuple(wide));
  EXPECT_EQ(wide_hasher.Masked(0xFFFFF), HashTupleMasked(wide, 0xFFFFF));
}

TEST(RelationShardTest, ShardCountRoundsUpToPowerOfTwo) {
  Relation rel(2, 5);
  EXPECT_EQ(rel.shard_count(), 8u);
  rel.Reshard(3);
  EXPECT_EQ(rel.shard_count(), 4u);
}

TEST(RelationShardTest, ReshardPreservesDedupAndIndexes) {
  Relation rel(2);
  for (int64_t i = 0; i < 100; ++i) rel.Insert(T({i, i * 10}));
  Tuple probe = T({7, 0});
  EXPECT_EQ(rel.Lookup(0b01, probe).size(), 1u);
  rel.Reshard(16);
  EXPECT_EQ(rel.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(rel.Insert(T({i, i * 10}))) << i;  // still deduplicated
    EXPECT_TRUE(rel.Contains(T({i, i * 10}))) << i;
  }
  EXPECT_EQ(rel.Lookup(0b01, probe).size(), 1u);
}

TEST(RelationShardTest, StageInsertDedupsAgainstCanonicalAndStaged) {
  Relation rel(2, 4);
  rel.Insert(T({1, 2}));
  EXPECT_FALSE(rel.StageInsert({0, 0}, T({1, 2})));  // canonical duplicate
  EXPECT_TRUE(rel.StageInsert({0, 1}, T({3, 4})));
  // Same-barrier duplicates are staged (cheaply) and resolved at drain.
  EXPECT_TRUE(rel.StageInsert({1, 0}, T({3, 4})));
  EXPECT_EQ(rel.StagedCount(), 2u);
  EXPECT_EQ(rel.size(), 1u);  // canonical store untouched until the drain
  EXPECT_EQ(rel.DrainStaged(), 1u);
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.StagedCount(), 0u);
  EXPECT_TRUE(rel.Contains(T({3, 4})));
  EXPECT_FALSE(rel.Insert(T({3, 4})));  // drained rows are deduplicated
}

TEST(RelationShardTest, DrainOrdersByTagWithMinTagMerge) {
  Relation rel(1, 4);
  // Staged out of submission order; tuple 30 is staged both by item 5 and
  // by item 1 — the min-tag copy (1, 0) must win its drain position and
  // the (5, 0) copy must be dropped.
  EXPECT_TRUE(rel.StageInsert({5, 0}, T({30})));
  EXPECT_TRUE(rel.StageInsert({2, 0}, T({20})));
  EXPECT_TRUE(rel.StageInsert({1, 0}, T({30})));
  EXPECT_TRUE(rel.StageInsert({0, 1}, T({10})));
  EXPECT_TRUE(rel.StageInsert({0, 0}, T({5})));
  EXPECT_EQ(rel.DrainStaged(), 4u);
  ASSERT_EQ(rel.size(), 4u);
  EXPECT_EQ(rel.tuple(0), T({5}));   // (0, 0)
  EXPECT_EQ(rel.tuple(1), T({10}));  // (0, 1)
  EXPECT_EQ(rel.tuple(2), T({30}));  // (1, 0) beats (5, 0)
  EXPECT_EQ(rel.tuple(3), T({20}));  // (2, 0)
}

TEST(RelationShardTest, DrainMaintainsBuiltIndexes) {
  Relation rel(2, 4);
  rel.Insert(T({1, 10}));
  Tuple probe = T({1, 0});
  EXPECT_EQ(rel.Lookup(0b01, probe).size(), 1u);
  EXPECT_TRUE(rel.StageInsert({0, 0}, T({1, 20})));
  rel.DrainStaged();
  EXPECT_EQ(rel.Lookup(0b01, probe).size(), 2u);
}

TEST(RelationShardTest, DiscardStagedDropsEverything) {
  Relation rel(1, 2);
  EXPECT_TRUE(rel.StageInsert({0, 0}, T({1})));
  EXPECT_TRUE(rel.StageInsert({0, 1}, T({2})));
  rel.DiscardStaged();
  EXPECT_EQ(rel.StagedCount(), 0u);
  EXPECT_EQ(rel.DrainStaged(), 0u);
  EXPECT_EQ(rel.size(), 0u);
}

TEST(RelationShardTest, CountersTrackAcceptedAndDuplicates) {
  Relation rel(1, 2);
  rel.Insert(T({1}));
  EXPECT_FALSE(rel.StageInsert({0, 0}, T({1})));  // canonical duplicate
  EXPECT_TRUE(rel.StageInsert({0, 1}, T({2})));
  EXPECT_TRUE(rel.StageInsert({0, 2}, T({2})));  // same-barrier duplicate
  // The same-barrier duplicate is reclassified when the drain drops it.
  EXPECT_EQ(rel.DrainStaged(), 1u);
  std::vector<ShardCounters> by_shard;
  ShardCounters total;
  rel.AccumulateShardCounters(&by_shard, &total);
  EXPECT_EQ(total.accepted, 1u);
  EXPECT_EQ(total.duplicates, 2u);
  EXPECT_EQ(by_shard.size(), 2u);
}

TEST(RelationShardTest, TwoPhaseDrainMatchesDrainStaged) {
  // The same staged inserts, drained via the one-shot DrainStaged and via
  // the per-shard PrepareStagedShard + DrainPrepared phases, must produce
  // identical canonical orders.
  auto stage = [](Relation& rel) {
    EXPECT_TRUE(rel.StageInsert({5, 0}, T({30, 1})));
    EXPECT_TRUE(rel.StageInsert({2, 0}, T({20, 2})));
    EXPECT_TRUE(rel.StageInsert({1, 0}, T({30, 1})));  // same-barrier dup
    EXPECT_TRUE(rel.StageInsert({0, 1}, T({10, 3})));
    EXPECT_TRUE(rel.StageInsert({0, 0}, T({5, 4})));
    EXPECT_TRUE(rel.StageInsert({3, 2}, T({40, 5})));
  };
  Relation one_shot(2, 4);
  stage(one_shot);
  EXPECT_EQ(one_shot.DrainStaged(), 5u);

  Relation two_phase(2, 4);
  stage(two_phase);
  for (size_t s = 0; s < two_phase.shard_count(); ++s) {
    two_phase.PrepareStagedShard(s);
  }
  EXPECT_EQ(two_phase.DrainPrepared(), 5u);

  ASSERT_EQ(two_phase.size(), one_shot.size());
  for (size_t i = 0; i < one_shot.size(); ++i) {
    EXPECT_EQ(two_phase.tuple(i), one_shot.tuple(i)) << i;
  }
  // Both drains leave equivalent dedup state.
  EXPECT_FALSE(two_phase.Insert(T({30, 1})));
  EXPECT_TRUE(two_phase.Contains(T({40, 5})));
}

TEST(RelationShardTest, TwoPhaseDrainMaintainsBuiltIndexes) {
  Relation rel(2, 4);
  rel.Insert(T({1, 10}));
  Tuple probe = T({1, 0});
  EXPECT_EQ(rel.Lookup(0b01, probe).size(), 1u);
  EXPECT_TRUE(rel.StageInsert({0, 0}, T({1, 20})));
  EXPECT_TRUE(rel.StageInsert({1, 0}, T({1, 30})));
  for (size_t s = 0; s < rel.shard_count(); ++s) rel.PrepareStagedShard(s);
  EXPECT_EQ(rel.DrainPrepared(), 2u);
  EXPECT_EQ(rel.Lookup(0b01, probe).size(), 3u);
}

TEST(RelationShardTest, CloneIsDeepAndIndependent) {
  Relation rel(2, 4);
  for (int64_t i = 0; i < 50; ++i) rel.Insert(T({i, i * 2}));
  Tuple probe = T({7, 0});
  EXPECT_EQ(rel.Lookup(0b01, probe).size(), 1u);  // build an index first

  Relation copy = rel.Clone();
  EXPECT_EQ(copy.size(), 50u);
  EXPECT_EQ(copy.Lookup(0b01, probe).size(), 1u);
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_FALSE(copy.Insert(T({i, i * 2}))) << i;  // dedup state copied
  }
  // Mutating the clone leaves the original untouched.
  EXPECT_TRUE(copy.Insert(T({100, 200})));
  EXPECT_FALSE(rel.Contains(T({100, 200})));
  EXPECT_EQ(rel.size(), 50u);
}

TEST(FactDbTest, CloneCopiesEveryRelation) {
  FactDb db;
  db.Add("p", T({1}));
  db.Add("p", T({2}));
  db.Add("q", T({3}));
  FactDb copy = db.Clone();
  EXPECT_EQ(copy.TotalFacts(), 3u);
  EXPECT_TRUE(copy.Get("p")->Contains(T({1})));
  copy.Add("p", T({9}));
  EXPECT_EQ(db.Get("p")->size(), 2u);
  EXPECT_EQ(copy.Get("p")->size(), 3u);
}

// --- cardinality statistics (distinct-count registers) -----------------------

TEST(RelationStatsTest, DistinctEstimateTracksPerPositionCardinality) {
  Relation rel(2);
  for (int64_t i = 0; i < 1000; ++i) rel.Insert(T({i % 10, i}));
  // Position 0 has 10 distinct values, position 1 has 1000.  HLL with 64
  // registers is approximate; demand the right order of magnitude.
  EXPECT_GE(rel.DistinctEstimate(0), 5.0);
  EXPECT_LE(rel.DistinctEstimate(0), 20.0);
  EXPECT_GE(rel.DistinctEstimate(1), 500.0);
  EXPECT_LE(rel.DistinctEstimate(1), 1000.0);  // clamped to the row count
  Relation empty(2);
  EXPECT_EQ(empty.DistinctEstimate(0), 0.0);
}

TEST(RelationStatsTest, StagedDrainMergesShardSketchesLikeDirectInsert) {
  Relation direct(2);
  Relation staged(2, 4);
  uint32_t seq = 0;
  for (int64_t i = 0; i < 500; ++i) {
    direct.Insert(T({i % 7, i}));
    ASSERT_TRUE(staged.StageInsert({0, seq++}, T({i % 7, i})));
  }
  EXPECT_EQ(staged.DrainStaged(), 500u);
  // Sketch merge is register-wise max over the same hash stream, so the
  // drained relation's estimates equal the directly inserted one's.
  EXPECT_EQ(staged.DistinctEstimate(0), direct.DistinctEstimate(0));
  EXPECT_EQ(staged.DistinctEstimate(1), direct.DistinctEstimate(1));
}

TEST(RelationStatsTest, DiscardStagedDropsPendingSketches) {
  Relation rel(1, 4);
  rel.Insert(T({1}));
  double before = rel.DistinctEstimate(0);
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(rel.StageInsert({0, static_cast<uint32_t>(i)}, T({i + 10})));
  }
  rel.DiscardStaged();
  EXPECT_EQ(rel.DistinctEstimate(0), before);
}

TEST(RelationStatsTest, EraseMarksStaleAndRefreshRebuilds) {
  Relation rel(2);
  for (int64_t i = 0; i < 200; ++i) rel.Insert(T({i, i % 3}));
  EXPECT_FALSE(rel.stats_stale());
  std::vector<Tuple> doomed;
  for (int64_t i = 0; i < 150; ++i) doomed.push_back(T({i, i % 3}));
  EXPECT_EQ(rel.EraseTuples(doomed), 150u);
  // HLL registers cannot subtract: erase marks them stale instead of
  // leaving silently inflated estimates.
  EXPECT_TRUE(rel.stats_stale());
  rel.RefreshStats();
  EXPECT_FALSE(rel.stats_stale());
  // Rebuilt from the 50 surviving rows: estimates deflate accordingly
  // (and stay clamped to the new row count).
  EXPECT_LE(rel.DistinctEstimate(0), 50.0);
  EXPECT_GE(rel.DistinctEstimate(0), 25.0);
}

TEST(RelationStatsTest, CloneCopiesSketchesAndStaleness) {
  Relation rel(1);
  for (int64_t i = 0; i < 300; ++i) rel.Insert(T({i}));
  Relation copy = rel.Clone();
  EXPECT_EQ(copy.DistinctEstimate(0), rel.DistinctEstimate(0));
  rel.EraseTuples({T({0})});
  Relation stale_copy = rel.Clone();
  EXPECT_TRUE(stale_copy.stats_stale());
  EXPECT_FALSE(copy.stats_stale());
}

TEST(FactDbTest, ReshardAllAppliesToExistingAndFutureRelations) {
  FactDb db;
  db.Add("p", T({1}));
  db.ReshardAll(4);
  EXPECT_EQ(db.default_shard_count(), 4u);
  EXPECT_EQ(db.Get("p")->shard_count(), 4u);
  db.Add("q", T({2}));
  EXPECT_EQ(db.Get("q")->shard_count(), 4u);
}

}  // namespace
}  // namespace kgm::vadalog
