#include "vadalog/database.h"

#include <gtest/gtest.h>

namespace kgm::vadalog {
namespace {

Tuple T(std::initializer_list<int64_t> values) {
  Tuple t;
  for (int64_t v : values) t.push_back(Value(v));
  return t;
}

TEST(RelationTest, InsertDeduplicates) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert(T({1, 2})));
  EXPECT_FALSE(rel.Insert(T({1, 2})));
  EXPECT_TRUE(rel.Insert(T({2, 1})));
  EXPECT_EQ(rel.size(), 2u);
}

TEST(RelationTest, Contains) {
  Relation rel(2);
  rel.Insert(T({1, 2}));
  EXPECT_TRUE(rel.Contains(T({1, 2})));
  EXPECT_FALSE(rel.Contains(T({2, 2})));
}

TEST(RelationTest, MaskedLookup) {
  Relation rel(3);
  rel.Insert(T({1, 10, 100}));
  rel.Insert(T({1, 20, 200}));
  rel.Insert(T({2, 10, 300}));
  // Lookup on first position.
  Tuple probe = T({1, 0, 0});
  const auto& rows = rel.Lookup(0b001, probe);
  size_t matches = 0;
  for (uint32_t r : rows) {
    if (rel.MatchesMasked(r, 0b001, probe)) ++matches;
  }
  EXPECT_EQ(matches, 2u);
}

TEST(RelationTest, IndexMaintainedAcrossInserts) {
  Relation rel(2);
  rel.Insert(T({1, 10}));
  Tuple probe = T({1, 0});
  EXPECT_EQ(rel.Lookup(0b01, probe).size(), 1u);
  // Insert after the index is built: index must pick it up.
  rel.Insert(T({1, 20}));
  EXPECT_EQ(rel.Lookup(0b01, probe).size(), 2u);
}

TEST(RelationTest, MultiPositionMask) {
  Relation rel(3);
  rel.Insert(T({1, 10, 100}));
  rel.Insert(T({1, 10, 200}));
  rel.Insert(T({1, 20, 300}));
  Tuple probe = T({1, 10, 0});
  const auto& rows = rel.Lookup(0b011, probe);
  size_t matches = 0;
  for (uint32_t r : rows) {
    if (rel.MatchesMasked(r, 0b011, probe)) ++matches;
  }
  EXPECT_EQ(matches, 2u);
}

TEST(FactDbTest, GetOrCreateAndAdd) {
  FactDb db;
  EXPECT_EQ(db.Get("p"), nullptr);
  EXPECT_TRUE(db.Add("p", T({1, 2})));
  EXPECT_FALSE(db.Add("p", T({1, 2})));
  ASSERT_NE(db.Get("p"), nullptr);
  EXPECT_EQ(db.Get("p")->size(), 1u);
  EXPECT_EQ(db.TotalFacts(), 1u);
  EXPECT_EQ(db.Predicates(), (std::vector<std::string>{"p"}));
}

TEST(FactDbTest, DebugStringListsFacts) {
  FactDb db;
  db.Add("edge", {Value("a"), Value("b")});
  std::string s = db.DebugString();
  EXPECT_EQ(s, "edge(\"a\",\"b\")\n");
}

TEST(TupleHashTest, MaskedHashIgnoresUnmaskedPositions) {
  Tuple a = T({1, 999});
  Tuple b = T({1, 123});
  EXPECT_EQ(HashTupleMasked(a, 0b01), HashTupleMasked(b, 0b01));
  EXPECT_NE(HashTuple(a), HashTuple(b));
}

}  // namespace
}  // namespace kgm::vadalog
