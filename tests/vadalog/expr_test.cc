// Unit tests of the scalar expression evaluator (conditions, assignments,
// builtins) used throughout rule bodies.

#include <gtest/gtest.h>

#include "vadalog/ast.h"
#include "vadalog/lexer.h"
#include "vadalog/parser.h"

namespace kgm::vadalog {
namespace {

Result<Value> Eval(const std::string& source, Bindings env = {}) {
  auto tokens = Tokenize(source);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  TokenStream ts(std::move(tokens).value());
  auto expr = ParseExpression(ts);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
  return EvalExpr(**expr, env);
}

Value V(int64_t i) { return Value(i); }

TEST(ExprTest, IntegerArithmetic) {
  EXPECT_EQ(Eval("1 + 2 * 3").value(), V(7));
  EXPECT_EQ(Eval("(1 + 2) * 3").value(), V(9));
  EXPECT_EQ(Eval("7 / 2").value(), V(3));    // integer division
  EXPECT_EQ(Eval("-5 + 2").value(), V(-3));
  EXPECT_EQ(Eval("mod(7, 3)").value(), V(1));
}

TEST(ExprTest, DoubleArithmeticAndMixing) {
  EXPECT_EQ(Eval("0.5 + 0.25").value(), Value(0.75));
  EXPECT_EQ(Eval("1 + 0.5").value(), Value(1.5));  // int widens to double
  EXPECT_EQ(Eval("7.0 / 2").value(), Value(3.5));
}

TEST(ExprTest, DivisionByZero) {
  EXPECT_FALSE(Eval("1 / 0").ok());
  EXPECT_FALSE(Eval("mod(1, 0)").ok());
  // IEEE semantics for doubles.
  EXPECT_TRUE(Eval("1.0 / 0.0").ok());
}

TEST(ExprTest, Comparisons) {
  EXPECT_EQ(Eval("1 < 2").value(), Value(true));
  EXPECT_EQ(Eval("2 <= 2").value(), Value(true));
  EXPECT_EQ(Eval("3 > 4").value(), Value(false));
  EXPECT_EQ(Eval("1 == 1.0").value(), Value(true));  // numeric coercion
  EXPECT_EQ(Eval("\"a\" < \"b\"").value(), Value(true));
  EXPECT_EQ(Eval("\"a\" == \"a\"").value(), Value(true));
}

TEST(ExprTest, CrossKindComparisons) {
  EXPECT_EQ(Eval("\"a\" == 1").value(), Value(false));
  EXPECT_EQ(Eval("\"a\" != 1").value(), Value(true));
  // Ordering across kinds is false (SQL-null-style), not an error.
  EXPECT_EQ(Eval("\"a\" < 1").value(), Value(false));
}

TEST(ExprTest, BooleanConnectivesShortCircuit) {
  EXPECT_EQ(Eval("true && false").value(), Value(false));
  EXPECT_EQ(Eval("true || false").value(), Value(true));
  EXPECT_EQ(Eval("!true").value(), Value(false));
  // Short circuit: the RHS (a type error) is never evaluated.
  EXPECT_EQ(Eval("false && (1 + \"x\" == 0)").value(), Value(false));
  EXPECT_EQ(Eval("true || (1 + \"x\" == 0)").value(), Value(true));
}

TEST(ExprTest, StringBuiltins) {
  EXPECT_EQ(Eval("concat(\"a\", \"b\", 1)").value(), Value("ab1"));
  EXPECT_EQ(Eval("\"a\" + \"b\"").value(), Value("ab"));
  EXPECT_EQ(Eval("substr(\"hello\", 1, 3)").value(), Value("ell"));
  EXPECT_FALSE(Eval("substr(\"hello\", 9, 3)").ok());
  EXPECT_EQ(Eval("strlen(\"hello\")").value(), V(5));
  EXPECT_EQ(Eval("to_string(42)").value(), Value("42"));
}

TEST(ExprTest, NumericBuiltins) {
  EXPECT_EQ(Eval("abs(-3)").value(), V(3));
  EXPECT_EQ(Eval("abs(-3.5)").value(), Value(3.5));
  EXPECT_EQ(Eval("min(2, 5)").value(), V(2));
  EXPECT_EQ(Eval("max(2, 5)").value(), V(5));
  EXPECT_EQ(Eval("to_int(3.9)").value(), V(3));
  EXPECT_EQ(Eval("to_int(\"17\")").value(), V(17));
  EXPECT_EQ(Eval("to_double(3)").value(), Value(3.0));
  EXPECT_EQ(Eval("to_double(\"0.5\")").value(), Value(0.5));
}

TEST(ExprTest, NullAndRecordBuiltins) {
  Bindings env;
  env["n"] = Value();
  env["r"] = MakeRecord({{"a", V(1)}, {"b", Value("x")}});
  EXPECT_EQ(Eval("is_null(n)", env).value(), Value(true));
  EXPECT_EQ(Eval("is_null(r)", env).value(), Value(false));
  EXPECT_EQ(Eval("get(r, \"a\")", env).value(), V(1));
  EXPECT_EQ(Eval("get(r, \"b\")", env).value(), Value("x"));
  EXPECT_EQ(Eval("get(r, \"missing\")", env).value(), Value());
  EXPECT_FALSE(Eval("get(n, \"a\")", env).ok());
}

TEST(ExprTest, VariablesAndUnbound) {
  Bindings env;
  env["x"] = V(10);
  EXPECT_EQ(Eval("x * x + 1", env).value(), V(101));
  auto unbound = Eval("y + 1", env);
  ASSERT_FALSE(unbound.ok());
  EXPECT_NE(unbound.status().message().find("unbound"), std::string::npos);
}

TEST(ExprTest, TypeErrors) {
  EXPECT_FALSE(Eval("1 - \"x\"").ok());
  EXPECT_FALSE(Eval("!5").ok());
  EXPECT_FALSE(Eval("-\"x\"").ok());
  EXPECT_FALSE(Eval("true && 1").ok());
  EXPECT_FALSE(Eval("nosuchfn(1)").ok());
  EXPECT_FALSE(Eval("abs(1, 2)").ok());
}

TEST(ExprTest, CollectVars) {
  auto tokens = Tokenize("x + f(y, z * x)").value();
  TokenStream ts(std::move(tokens));
  ExprPtr e = ParseExpression(ts).value();
  std::vector<std::string> vars;
  e->CollectVars(&vars);
  EXPECT_EQ(vars, (std::vector<std::string>{"x", "y", "z", "x"}));
}

TEST(ExprTest, ToStringRoundTrips) {
  auto tokens = Tokenize("(x + 1) * max(y, 2) > 0.5 && !done").value();
  TokenStream ts(std::move(tokens));
  ExprPtr e = ParseExpression(ts).value();
  std::string printed = e->ToString();
  auto tokens2 = Tokenize(printed).value();
  TokenStream ts2(std::move(tokens2));
  ExprPtr e2 = ParseExpression(ts2).value();
  EXPECT_EQ(e2->ToString(), printed);
}

}  // namespace
}  // namespace kgm::vadalog
