// Per-run deadline and cooperative cancellation (EngineOptions::deadline /
// EngineOptions::cancel), the serving layer's defense against runaway
// recursive queries.

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "vadalog/engine.h"
#include "vadalog/parser.h"

namespace kgm::vadalog {
namespace {

using Clock = std::chrono::steady_clock;

// Transitive closure over an n-cycle: derives n^2 path facts, far more
// work than a millisecond-scale deadline allows for the sizes used here.
std::string CycleClosure(int n) {
  std::ostringstream src;
  for (int i = 0; i < n; ++i) {
    src << "@fact edge(" << i << ", " << (i + 1) % n << ").\n";
  }
  src << "edge(x, y) -> path(x, y).\n";
  src << "path(x, y), edge(y, z) -> path(x, z).\n";
  return src.str();
}

TEST(EngineDeadlineTest, ExpiredDeadlineFailsFast) {
  auto program = ParseProgram(CycleClosure(10));
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EngineOptions options;
  options.deadline = Clock::now() - std::chrono::seconds(1);
  Engine engine(std::move(*program), options);
  ASSERT_TRUE(engine.status().ok());
  FactDb db;
  Status s = engine.Run(&db);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
}

TEST(EngineDeadlineTest, ShortDeadlineStopsRecursiveProgram) {
  // 400^2 = 160k derived facts: comfortably slower than 1ms.
  auto program = ParseProgram(CycleClosure(400));
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EngineOptions options;
  options.deadline = Clock::now() + std::chrono::milliseconds(1);
  Engine engine(std::move(*program), options);
  ASSERT_TRUE(engine.status().ok());
  FactDb db;
  Status s = engine.Run(&db);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
  // The run was cut off mid-fixpoint: partial progress, not the full
  // closure.
  const Relation* path = db.Get("path");
  const size_t derived = path == nullptr ? 0 : path->size();
  EXPECT_LT(derived, 400u * 400u);
}

TEST(EngineDeadlineTest, ShortDeadlineStopsParallelRun) {
  auto program = ParseProgram(CycleClosure(400));
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EngineOptions options;
  options.num_threads = 4;
  options.deadline = Clock::now() + std::chrono::milliseconds(1);
  Engine engine(std::move(*program), options);
  ASSERT_TRUE(engine.status().ok());
  FactDb db;
  Status s = engine.Run(&db);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
}

TEST(EngineDeadlineTest, CancelFlagStopsRun) {
  auto program = ParseProgram(CycleClosure(10));
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EngineOptions options;
  auto cancel = std::make_shared<std::atomic<bool>>(true);
  options.cancel = cancel;
  Engine engine(std::move(*program), options);
  ASSERT_TRUE(engine.status().ok());
  FactDb db;
  Status s = engine.Run(&db);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
}

TEST(EngineDeadlineTest, ShortDeadlineStopsAggregateFinalization) {
  // One stratified aggregation over many groups: the bulk of the run is
  // the group fold + finalize loop between barriers, which polls the
  // deadline every ~16k group emissions like the join loops do.
  std::ostringstream src;
  src << "w(g, v), t = sum(v, <g>) -> total(g, t).\n";
  auto program = ParseProgram(src.str());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  FactDb db;
  for (int64_t i = 0; i < 400000; ++i) {
    db.Add("w", {Value(i), Value(0.5)});
  }
  EngineOptions options;
  options.deadline = Clock::now() + std::chrono::milliseconds(1);
  Engine engine(std::move(*program), options);
  ASSERT_TRUE(engine.status().ok());
  Status s = engine.Run(&db);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
}

TEST(EngineDeadlineTest, ShortDeadlineStopsRestrictedChase) {
  // Barrier chase: the ordered replay between barriers polls the deadline
  // too, so existential programs stay cancellable at every thread count.
  std::ostringstream src;
  for (int i = 0; i < 400; ++i) {
    src << "@fact edge(" << i << ", " << (i + 1) % 400 << ").\n";
  }
  src << "edge(x, y) -> exists w rel(x, y, w).\n";
  src << "rel(x, y, w), edge(y, z) -> exists v rel(x, z, v).\n";
  auto program = ParseProgram(src.str());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EngineOptions options;
  options.chase_mode = ChaseMode::kRestricted;
  options.num_threads = 4;
  options.deadline = Clock::now() + std::chrono::milliseconds(1);
  Engine engine(std::move(*program), options);
  ASSERT_TRUE(engine.status().ok());
  FactDb db;
  Status s = engine.Run(&db);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
}

TEST(EngineDeadlineTest, NoDeadlineRunsToFixpoint) {
  FactDb db;
  Status s = RunProgram(CycleClosure(20), &db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_NE(db.Get("path"), nullptr);
  EXPECT_EQ(db.Get("path")->size(), 400u);
}

TEST(EngineDeadlineTest, FutureDeadlineDoesNotInterfere) {
  auto program = ParseProgram(CycleClosure(20));
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EngineOptions options;
  options.deadline = Clock::now() + std::chrono::minutes(5);
  Engine engine(std::move(*program), options);
  ASSERT_TRUE(engine.status().ok());
  FactDb db;
  Status s = engine.Run(&db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(db.Get("path")->size(), 400u);
}

}  // namespace
}  // namespace kgm::vadalog
