// Per-run deadline and cooperative cancellation (EngineOptions::deadline /
// EngineOptions::cancel), the serving layer's defense against runaway
// recursive queries.

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "vadalog/engine.h"
#include "vadalog/parser.h"

namespace kgm::vadalog {
namespace {

using Clock = std::chrono::steady_clock;

// Transitive closure over an n-cycle: derives n^2 path facts, far more
// work than a millisecond-scale deadline allows for the sizes used here.
std::string CycleClosure(int n) {
  std::ostringstream src;
  for (int i = 0; i < n; ++i) {
    src << "@fact edge(" << i << ", " << (i + 1) % n << ").\n";
  }
  src << "edge(x, y) -> path(x, y).\n";
  src << "path(x, y), edge(y, z) -> path(x, z).\n";
  return src.str();
}

TEST(EngineDeadlineTest, ExpiredDeadlineFailsFast) {
  auto program = ParseProgram(CycleClosure(10));
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EngineOptions options;
  options.deadline = Clock::now() - std::chrono::seconds(1);
  Engine engine(std::move(*program), options);
  ASSERT_TRUE(engine.status().ok());
  FactDb db;
  Status s = engine.Run(&db);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
}

TEST(EngineDeadlineTest, ShortDeadlineStopsRecursiveProgram) {
  // 400^2 = 160k derived facts: comfortably slower than 1ms.
  auto program = ParseProgram(CycleClosure(400));
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EngineOptions options;
  options.deadline = Clock::now() + std::chrono::milliseconds(1);
  Engine engine(std::move(*program), options);
  ASSERT_TRUE(engine.status().ok());
  FactDb db;
  Status s = engine.Run(&db);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
  // The run was cut off mid-fixpoint: partial progress, not the full
  // closure.
  const Relation* path = db.Get("path");
  const size_t derived = path == nullptr ? 0 : path->size();
  EXPECT_LT(derived, 400u * 400u);
}

TEST(EngineDeadlineTest, ShortDeadlineStopsParallelRun) {
  auto program = ParseProgram(CycleClosure(400));
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EngineOptions options;
  options.num_threads = 4;
  options.deadline = Clock::now() + std::chrono::milliseconds(1);
  Engine engine(std::move(*program), options);
  ASSERT_TRUE(engine.status().ok());
  FactDb db;
  Status s = engine.Run(&db);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
}

TEST(EngineDeadlineTest, CancelFlagStopsRun) {
  auto program = ParseProgram(CycleClosure(10));
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EngineOptions options;
  auto cancel = std::make_shared<std::atomic<bool>>(true);
  options.cancel = cancel;
  Engine engine(std::move(*program), options);
  ASSERT_TRUE(engine.status().ok());
  FactDb db;
  Status s = engine.Run(&db);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
}

TEST(EngineDeadlineTest, NoDeadlineRunsToFixpoint) {
  FactDb db;
  Status s = RunProgram(CycleClosure(20), &db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_NE(db.Get("path"), nullptr);
  EXPECT_EQ(db.Get("path")->size(), 400u);
}

TEST(EngineDeadlineTest, FutureDeadlineDoesNotInterfere) {
  auto program = ParseProgram(CycleClosure(20));
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EngineOptions options;
  options.deadline = Clock::now() + std::chrono::minutes(5);
  Engine engine(std::move(*program), options);
  ASSERT_TRUE(engine.status().ok());
  FactDb db;
  Status s = engine.Run(&db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(db.Get("path")->size(), 400u);
}

}  // namespace
}  // namespace kgm::vadalog
