#include "vadalog/parser.h"

#include <gtest/gtest.h>

namespace kgm::vadalog {
namespace {

TEST(ParserTest, PaperFormRule) {
  auto rule = ParseRule("company(x) -> controls(x, x).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ASSERT_EQ(rule->body.size(), 1u);
  EXPECT_EQ(rule->body[0].atom.predicate, "company");
  ASSERT_EQ(rule->head.size(), 1u);
  EXPECT_EQ(rule->head[0].predicate, "controls");
  ASSERT_EQ(rule->head[0].args.size(), 2u);
  EXPECT_EQ(rule->head[0].args[0].var, "x");
  EXPECT_EQ(rule->head[0].args[1].var, "x");
}

TEST(ParserTest, DatalogFormRule) {
  auto rule = ParseRule("controls(x, x) :- company(x).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ASSERT_EQ(rule->body.size(), 1u);
  EXPECT_EQ(rule->body[0].atom.predicate, "company");
  EXPECT_EQ(rule->head[0].predicate, "controls");
}

TEST(ParserTest, Example42CompanyControl) {
  // The paper's Example 4.2, rule (2).
  auto rule = ParseRule(
      "controls(x,z), own(z,y,w), v = sum(w, <z>), v > 0.5"
      " -> controls(x,y).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->body.size(), 2u);
  ASSERT_EQ(rule->aggregates.size(), 1u);
  EXPECT_EQ(rule->aggregates[0].func, "sum");
  EXPECT_EQ(rule->aggregates[0].result_var, "v");
  EXPECT_EQ(rule->aggregates[0].contributors,
            (std::vector<std::string>{"z"}));
  ASSERT_EQ(rule->conditions.size(), 1u);
}

TEST(ParserTest, NegatedLiteral) {
  auto rule = ParseRule("p(x), not q(x) -> r(x).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ASSERT_EQ(rule->body.size(), 2u);
  EXPECT_FALSE(rule->body[0].negated);
  EXPECT_TRUE(rule->body[1].negated);
}

TEST(ParserTest, ExistentialPlain) {
  auto rule = ParseRule("business(x) -> exists c controlsEdge(c, x, x).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ASSERT_EQ(rule->existentials.size(), 1u);
  EXPECT_EQ(rule->existentials[0].var, "c");
  EXPECT_TRUE(rule->existentials[0].skolem_functor.empty());
}

TEST(ParserTest, ExistentialWithSkolemFunctor) {
  auto rule = ParseRule(
      "node(n, s) -> exists x = skN(n), exists h = skH(n, s) "
      "copied(x, h).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ASSERT_EQ(rule->existentials.size(), 2u);
  EXPECT_EQ(rule->existentials[0].skolem_functor, "skN");
  EXPECT_EQ(rule->existentials[0].skolem_args,
            (std::vector<std::string>{"n"}));
  EXPECT_EQ(rule->existentials[1].skolem_args,
            (std::vector<std::string>{"n", "s"}));
}

TEST(ParserTest, ConstantsInAtoms) {
  auto rule = ParseRule(
      R"(p(x, "label", 3, -2, 0.5, true, false, _) -> q(x).)");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  const auto& args = rule->body[0].atom.args;
  ASSERT_EQ(args.size(), 8u);
  EXPECT_TRUE(args[0].is_var());
  EXPECT_EQ(args[1].constant, Value("label"));
  EXPECT_EQ(args[2].constant, Value(int64_t{3}));
  EXPECT_EQ(args[3].constant, Value(int64_t{-2}));
  EXPECT_EQ(args[4].constant, Value(0.5));
  EXPECT_EQ(args[5].constant, Value(true));
  EXPECT_EQ(args[6].constant, Value(false));
  EXPECT_TRUE(args[7].is_anonymous());
}

TEST(ParserTest, AssignmentVsCondition) {
  auto rule = ParseRule("p(x, y), s = x + y, s > 10, x != y -> q(s).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->assignments.size(), 1u);
  EXPECT_EQ(rule->conditions.size(), 2u);
}

TEST(ParserTest, MultiAtomHead) {
  auto rule = ParseRule("p(x) -> q(x), r(x, x).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->head.size(), 2u);
}

TEST(ParserTest, ProgramWithAnnotationsAndFacts) {
  auto program = ParseProgram(R"(
    @input("own").
    @fact own("a", "b", 0.6).
    @fact company("a").
    company(x) -> controls(x, x).
    @output("controls").
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->inputs, (std::vector<std::string>{"own"}));
  EXPECT_EQ(program->outputs, (std::vector<std::string>{"controls"}));
  ASSERT_EQ(program->facts.size(), 2u);
  EXPECT_EQ(program->facts[0].values[2], Value(0.6));
  EXPECT_EQ(program->rules.size(), 1u);
}

TEST(ParserTest, BareGroundAtomBecomesFactRule) {
  auto program = ParseProgram(R"(p("a", 1).)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->rules.size(), 1u);
  EXPECT_TRUE(program->rules[0].body.empty());
  ASSERT_EQ(program->rules[0].head.size(), 1u);
}

TEST(ParserTest, CommentsInsideProgram) {
  auto program = ParseProgram(R"(
    % company control, Example 4.2
    company(x) -> controls(x, x).
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->rules.size(), 1u);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto rule = ParseRule("p(x, y), v = x + y * 2 - 1 -> q(v).");
  ASSERT_TRUE(rule.ok());
  // (x + (y*2)) - 1
  EXPECT_EQ(rule->assignments[0].expr->ToString(),
            "((x + (y * 2)) - 1)");
}

TEST(ParserTest, BooleanConditions) {
  auto rule = ParseRule("p(x, y), x > 1 && y < 2 || x == y -> q(x).");
  ASSERT_TRUE(rule.ok());
  ASSERT_EQ(rule->conditions.size(), 1u);
  EXPECT_EQ(rule->conditions[0].expr->ToString(),
            "(((x > 1) && (y < 2)) || (x == y))");
}

TEST(ParserTest, AggregateVariants) {
  EXPECT_TRUE(ParseRule("p(x, w), c = count(<x>) -> q(c).").ok());
  EXPECT_TRUE(ParseRule("p(x, w), c = count() -> q(x, c).").ok());
  EXPECT_TRUE(ParseRule("p(x, w), m = msum(w, <x>) -> q(m).").ok());
  EXPECT_TRUE(ParseRule("p(x, w), m = prod(w, <x>) -> q(m).").ok());
  EXPECT_TRUE(
      ParseRule("p(n, v), r = pack(n, v) -> q(r).").ok());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseRule("p(x) -> .").ok());
  EXPECT_FALSE(ParseRule("p(x) q(x).").ok());
  EXPECT_FALSE(ParseRule("p(x -> q(x).").ok());
  EXPECT_FALSE(ParseRule("p(x) -> q(x)").ok());  // missing dot
  EXPECT_FALSE(ParseProgram("@unknown(\"x\").").ok());
  EXPECT_FALSE(ParseRule("p(x), not q(x) :- r(x).").ok());
}

TEST(ParserTest, RoundTripToString) {
  auto rule = ParseRule(
      "controls(x,z), own(z,y,w), v = sum(w, <z>), v > 0.5 -> "
      "exists c ctrl(c, x, y).");
  ASSERT_TRUE(rule.ok());
  std::string printed = rule->ToString();
  // The printed form must itself parse to the same shape.
  auto again = ParseRule(printed);
  ASSERT_TRUE(again.ok()) << printed << "\n" << again.status().ToString();
  EXPECT_EQ(again->ToString(), printed);
}

}  // namespace
}  // namespace kgm::vadalog
