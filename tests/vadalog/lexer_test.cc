#include "vadalog/lexer.h"

#include <gtest/gtest.h>

namespace kgm::vadalog {
namespace {

std::vector<TokKind> Kinds(const std::string& src) {
  auto tokens = Tokenize(src);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokKind> out;
  for (const Token& t : tokens.value()) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, Identifiers) {
  auto toks = Tokenize("abc _x B2b").value();
  ASSERT_EQ(toks.size(), 4u);  // includes end
  EXPECT_EQ(toks[0].text, "abc");
  EXPECT_EQ(toks[1].text, "_x");
  EXPECT_EQ(toks[2].text, "B2b");
}

TEST(LexerTest, Numbers) {
  auto toks = Tokenize("42 0.5 1e3 2.5e-2").value();
  EXPECT_EQ(toks[0].kind, TokKind::kInt);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].kind, TokKind::kDouble);
  EXPECT_DOUBLE_EQ(toks[1].double_value, 0.5);
  EXPECT_EQ(toks[2].kind, TokKind::kDouble);
  EXPECT_DOUBLE_EQ(toks[2].double_value, 1000.0);
  EXPECT_EQ(toks[3].kind, TokKind::kDouble);
  EXPECT_DOUBLE_EQ(toks[3].double_value, 0.025);
}

TEST(LexerTest, NumberFollowedByRuleDot) {
  auto toks = Tokenize("v > 0.5.").value();
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[2].kind, TokKind::kDouble);
  EXPECT_EQ(toks[3].kind, TokKind::kDot);
}

TEST(LexerTest, Strings) {
  auto toks = Tokenize(R"("hello" "a\"b" "x\n")").value();
  EXPECT_EQ(toks[0].text, "hello");
  EXPECT_EQ(toks[1].text, "a\"b");
  EXPECT_EQ(toks[2].text, "x\n");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("\"abc").ok());
  EXPECT_FALSE(Tokenize("\"abc\ndef\"").ok());
}

TEST(LexerTest, MultiCharOperators) {
  EXPECT_EQ(Kinds(":- -> == != <= >= && ||"),
            (std::vector<TokKind>{TokKind::kColonDash, TokKind::kArrow,
                                  TokKind::kEq, TokKind::kNe, TokKind::kLe,
                                  TokKind::kGe, TokKind::kAnd, TokKind::kOr,
                                  TokKind::kEnd}));
}

TEST(LexerTest, SingleCharOperators) {
  EXPECT_EQ(Kinds("( ) [ ] < > , . ; : = + - * / ! @ |"),
            (std::vector<TokKind>{
                TokKind::kLParen, TokKind::kRParen, TokKind::kLBracket,
                TokKind::kRBracket, TokKind::kLt, TokKind::kGt,
                TokKind::kComma, TokKind::kDot, TokKind::kSemicolon,
                TokKind::kColon, TokKind::kAssign, TokKind::kPlus,
                TokKind::kMinus, TokKind::kStar, TokKind::kSlash,
                TokKind::kBang, TokKind::kAt, TokKind::kPipe,
                TokKind::kEnd}));
}

TEST(LexerTest, CommentsIgnored) {
  auto toks = Tokenize("a % this is a comment\nb").value();
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(LexerTest, LineAndColumnTracking) {
  auto toks = Tokenize("a\n  b").value();
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].column, 3);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto r = Tokenize("a $ b");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unexpected character"),
            std::string::npos);
}

TEST(TokenStreamTest, MatchAndExpect) {
  TokenStream ts(Tokenize("a ( b").value());
  EXPECT_TRUE(ts.CheckIdent("a"));
  EXPECT_TRUE(ts.MatchIdent("a"));
  EXPECT_TRUE(ts.Match(TokKind::kLParen));
  EXPECT_FALSE(ts.Match(TokKind::kRParen));
  EXPECT_TRUE(ts.Expect(TokKind::kIdent, "identifier").ok());
  EXPECT_TRUE(ts.AtEnd());
  // Advancing past the end stays at the end token.
  ts.Advance();
  EXPECT_TRUE(ts.AtEnd());
}

}  // namespace
}  // namespace kgm::vadalog
