#include "core/dictionary.h"

#include <gtest/gtest.h>

#include "finkg/company_kg.h"

namespace kgm::core {
namespace {

bool SameAttr(const AttributeDef& a, const AttributeDef& b) {
  return a.name == b.name && a.type == b.type && a.is_id == b.is_id &&
         a.optional == b.optional && a.intensional == b.intensional &&
         a.modifiers.size() == b.modifiers.size();
}

TEST(DictionaryTest, RoundTripCompanyKg) {
  SuperSchema original = finkg::CompanyKgSchema();
  pg::PropertyGraph dict;
  ASSERT_TRUE(StoreSuperSchema(original, &dict).ok());

  auto loaded = LoadSuperSchema(dict, original.schema_oid(), "CompanyKG");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->nodes().size(), original.nodes().size());
  ASSERT_EQ(loaded->edges().size(), original.edges().size());
  ASSERT_EQ(loaded->generalizations().size(),
            original.generalizations().size());

  for (const NodeDef& node : original.nodes()) {
    const NodeDef* got = loaded->FindNode(node.name);
    ASSERT_NE(got, nullptr) << node.name;
    EXPECT_EQ(got->intensional, node.intensional) << node.name;
    ASSERT_EQ(got->attributes.size(), node.attributes.size()) << node.name;
    for (const AttributeDef& attr : node.attributes) {
      const AttributeDef* got_attr = got->FindAttribute(attr.name);
      ASSERT_NE(got_attr, nullptr) << node.name << "." << attr.name;
      EXPECT_TRUE(SameAttr(*got_attr, attr))
          << node.name << "." << attr.name;
    }
  }
  for (const EdgeDef& edge : original.edges()) {
    const EdgeDef* got = loaded->FindEdge(edge.name);
    ASSERT_NE(got, nullptr) << edge.name;
    EXPECT_EQ(got->from, edge.from);
    EXPECT_EQ(got->to, edge.to);
    EXPECT_EQ(got->intensional, edge.intensional);
    EXPECT_EQ(got->source.functional, edge.source.functional);
    EXPECT_EQ(got->source.optional, edge.source.optional);
    EXPECT_EQ(got->target.functional, edge.target.functional);
    EXPECT_EQ(got->target.optional, edge.target.optional);
    EXPECT_EQ(got->attributes.size(), edge.attributes.size());
  }
  // Generalization flags survive.
  bool found_total_disjoint = false;
  for (const GeneralizationDef& g : loaded->generalizations()) {
    if (g.parent == "Person") {
      EXPECT_TRUE(g.total);
      EXPECT_TRUE(g.disjoint);
      found_total_disjoint = true;
    }
    if (g.parent == "Business") {
      EXPECT_FALSE(g.total);
    }
  }
  EXPECT_TRUE(found_total_disjoint);
}

TEST(DictionaryTest, ModifiersRoundTrip) {
  SuperSchema s("Mods");
  AttributeDef code = IdAttr("code");
  code.modifiers.push_back(AttributeModifier::Unique());
  AttributeDef kind = Attr("kind");
  kind.modifiers.push_back(AttributeModifier::Enum(
      {Value("spa"), Value("srl")}));
  AttributeDef pct = Attr("pct", AttrType::kDouble);
  pct.modifiers.push_back(AttributeModifier::Range(0.0, 1.0));
  s.AddNode("A", {code, kind, pct});

  pg::PropertyGraph dict;
  ASSERT_TRUE(StoreSuperSchema(s, &dict).ok());
  auto loaded = LoadSuperSchema(dict, 0);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const NodeDef* a = loaded->FindNode("A");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->FindAttribute("code")->modifiers.size(), 1u);
  EXPECT_EQ(a->FindAttribute("code")->modifiers[0].kind,
            AttributeModifier::Kind::kUnique);
  ASSERT_EQ(a->FindAttribute("kind")->modifiers.size(), 1u);
  EXPECT_EQ(a->FindAttribute("kind")->modifiers[0].enum_values.size(), 2u);
  ASSERT_EQ(a->FindAttribute("pct")->modifiers.size(), 1u);
  EXPECT_DOUBLE_EQ(a->FindAttribute("pct")->modifiers[0].max, 1.0);
}

TEST(DictionaryTest, MultipleSchemasCoexist) {
  SuperSchema a("A", 1);
  a.AddNode("X", {IdAttr("id")});
  SuperSchema b("B", 2);
  b.AddNode("Y", {IdAttr("id")});
  b.AddNode("Z", {IdAttr("id")});
  pg::PropertyGraph dict;
  ASSERT_TRUE(StoreSuperSchema(a, &dict).ok());
  ASSERT_TRUE(StoreSuperSchema(b, &dict).ok());
  EXPECT_EQ(StoredSchemaOids(dict), (std::vector<int64_t>{1, 2}));
  auto loaded_a = LoadSuperSchema(dict, 1);
  auto loaded_b = LoadSuperSchema(dict, 2);
  ASSERT_TRUE(loaded_a.ok());
  ASSERT_TRUE(loaded_b.ok());
  EXPECT_EQ(loaded_a->nodes().size(), 1u);
  EXPECT_EQ(loaded_b->nodes().size(), 2u);
}

TEST(DictionaryTest, InvalidSchemaRejectedOnStore) {
  SuperSchema s("Bad");
  s.AddNode("A", {Attr("x")});  // no identifier
  pg::PropertyGraph dict;
  EXPECT_FALSE(StoreSuperSchema(s, &dict).ok());
}

TEST(DictionaryTest, DictionaryUsesPaperLinkDirections) {
  // SM_PARENT and SM_CHILD run from the SM_Generalization node to the
  // parent / child SM_Nodes, matching Example 4.4's extraction queries.
  SuperSchema s("Dir", 9);
  s.AddNode("P", {IdAttr("id")});
  s.AddNode("C");
  s.AddGeneralization("P", {"C"}, true, true);
  pg::PropertyGraph dict;
  ASSERT_TRUE(StoreSuperSchema(s, &dict).ok());
  auto gens = dict.NodesWithLabel(kSmGeneralization);
  ASSERT_EQ(gens.size(), 1u);
  int parent_edges = 0;
  int child_edges = 0;
  for (pg::EdgeId e : dict.OutEdges(gens[0])) {
    if (dict.edge(e).label == kSmParent) ++parent_edges;
    if (dict.edge(e).label == kSmChild) ++child_edges;
  }
  EXPECT_EQ(parent_edges, 1);
  EXPECT_EQ(child_edges, 1);
}

}  // namespace
}  // namespace kgm::core
