#include "core/models.h"

#include <gtest/gtest.h>

#include "core/gsl.h"
#include "core/metamodel.h"
#include "finkg/company_kg.h"

namespace kgm::core {
namespace {

TEST(ModelDefTest, PropertyGraphModelConstructs) {
  ModelDef pg = PropertyGraphModel();
  EXPECT_EQ(pg.name, "property_graph");
  EXPECT_TRUE(pg.Supports("SM_Node"));
  EXPECT_TRUE(pg.Supports("SM_Edge"));
  EXPECT_TRUE(pg.Supports("SM_Type"));
  EXPECT_TRUE(pg.Supports("SM_Attribute"));
  // No generalizations in the PG model: Eliminate must remove them.
  EXPECT_FALSE(pg.Supports("SM_Generalization"));
  EXPECT_EQ(pg.ConstructFor("SM_Node"), "Node");
  EXPECT_EQ(pg.ConstructFor("SM_Edge"), "Relationship");
  EXPECT_EQ(pg.ConstructFor("SM_Type"), "Label");
}

TEST(ModelDefTest, RelationalModelConstructs) {
  ModelDef rel = RelationalModel();
  EXPECT_EQ(rel.ConstructFor("SM_Type"), "Relation");
  EXPECT_EQ(rel.ConstructFor("SM_Attribute"), "Field");
  EXPECT_EQ(rel.ConstructFor("SM_Node"), "Predicate");
  EXPECT_EQ(rel.ConstructFor("SM_Edge"), "ForeignKey");
  EXPECT_FALSE(rel.Supports("SM_Generalization"));
}

TEST(ModelDefTest, CsvModelIsMinimal) {
  ModelDef csv = CsvModel();
  EXPECT_TRUE(csv.Supports("SM_Attribute"));
  EXPECT_FALSE(csv.Supports("SM_Edge"));
}

TEST(MetaModelTest, Figure2Graph) {
  pg::PropertyGraph g = MetaModelGraph();
  EXPECT_EQ(g.NodesWithLabel("MM_Entity").size(), 1u);
  EXPECT_EQ(g.NodesWithLabel("MM_Link").size(), 1u);
  EXPECT_EQ(g.NodesWithLabel("MM_Property").size(), 1u);
  EXPECT_EQ(g.EdgesWithLabel("MM_HAS_PROPERTY").size(), 2u);
}

TEST(MetaModelTest, SuperModelIsMetaInstance) {
  pg::PropertyGraph g = SuperModelAsMetaInstance();
  // Six super-construct entities of Figure 3.
  EXPECT_EQ(g.NodesWithLabel("MM_Entity").size(), 6u);
  // Nine link super-constructs.
  EXPECT_EQ(g.NodesWithLabel("MM_Link").size(), 9u);
  // Every MM_Link has exactly one source and one target.
  for (pg::NodeId id : g.NodesWithLabel("MM_Link")) {
    int sources = 0;
    int targets = 0;
    for (pg::EdgeId e : g.OutEdges(id)) {
      if (g.edge(e).label == "MM_SOURCE") ++sources;
      if (g.edge(e).label == "MM_TARGET") ++targets;
    }
    EXPECT_EQ(sources, 1);
    EXPECT_EQ(targets, 1);
  }
}

TEST(MetaModelTest, RenderingTableCoversConstructs) {
  auto table = SuperModelRenderingTable();
  EXPECT_GE(table.size(), 15u);
  int without_grapheme = 0;
  bool has_partial_disjoint = false;
  for (const GraphemeEntry& e : table) {
    if (!e.has_grapheme) ++without_grapheme;
    if (e.construct == "SM_Generalization" &&
        e.attributes.find("isTotal = false") != std::string::npos &&
        e.attributes.find("isDisjoint = true") != std::string::npos) {
      has_partial_disjoint = true;
    }
  }
  // The link constructs without explicit notation (gray rows in Fig. 3).
  EXPECT_GE(without_grapheme, 4);
  EXPECT_TRUE(has_partial_disjoint);
}

TEST(MetaModelTest, ModelingStackMentionsAllLevels) {
  std::string stack = RenderModelingStack();
  EXPECT_NE(stack.find("meta-model"), std::string::npos);
  EXPECT_NE(stack.find("super-model"), std::string::npos);
  EXPECT_NE(stack.find("super-schema"), std::string::npos);
  EXPECT_NE(stack.find("components"), std::string::npos);
}

TEST(GslTest, AsciiRenderingOfCompanyKg) {
  SuperSchema s = finkg::CompanyKgSchema();
  std::string ascii = RenderGslAscii(s);
  EXPECT_NE(ascii.find("PhysicalPerson"), std::string::npos);
  EXPECT_NE(ascii.find("fiscalCode <id>"), std::string::npos);
  EXPECT_NE(ascii.find("[HOLDS]"), std::string::npos);
  // Intensional edge rendered dashed (~).
  EXPECT_NE(ascii.find("~[CONTROLS]~>"), std::string::npos);
  // Total-disjoint generalization marker.
  EXPECT_NE(ascii.find("<=td="), std::string::npos);
  // Partial generalization (PublicListedCompany).
  EXPECT_NE(ascii.find("<=pd="), std::string::npos);
}

TEST(GslTest, DotRenderingIsWellFormed) {
  SuperSchema s = finkg::CompanyKgSchema();
  std::string dot = RenderGslDot(s);
  EXPECT_EQ(dot.find("digraph"), 0u);
  EXPECT_NE(dot.find("\"Business\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("arrowhead=onormal"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}\n"), std::string::npos);
}

TEST(PgSchemaTest, CanonicalizeOrdersDeterministically) {
  PgSchema s;
  s.node_types.push_back(PgNodeType{{"B", "Z", "A"}, {}, false});
  s.node_types.push_back(PgNodeType{{"A"}, {}, false});
  s.relationship_types.push_back(PgRelationshipType{"R", "B", "A", {}, false});
  s.relationship_types.push_back(PgRelationshipType{"R", "A", "B", {}, false});
  s.Canonicalize();
  EXPECT_EQ(s.node_types[0].primary_label(), "A");
  EXPECT_EQ(s.node_types[1].labels,
            (std::vector<std::string>{"B", "A", "Z"}));
  EXPECT_EQ(s.relationship_types[0].from, "A");
}

}  // namespace
}  // namespace kgm::core
