#include "core/superschema.h"

#include <gtest/gtest.h>

#include "finkg/company_kg.h"

namespace kgm::core {
namespace {

SuperSchema SmallSchema() {
  SuperSchema s("Small");
  s.AddNode("Person", {IdAttr("code"), Attr("name")});
  s.AddNode("PhysicalPerson", {Attr("gender")});
  s.AddNode("LegalPerson", {Attr("legalNature")});
  s.AddNode("Business", {Attr("capital", AttrType::kDouble)});
  s.AddGeneralization("Person", {"PhysicalPerson", "LegalPerson"}, true,
                      true);
  s.AddGeneralization("LegalPerson", {"Business"}, false, true);
  s.AddEdge("OWNS", "Person", "Business");
  return s;
}

TEST(SuperSchemaTest, BuilderAndLookups) {
  SuperSchema s = SmallSchema();
  EXPECT_NE(s.FindNode("Person"), nullptr);
  EXPECT_EQ(s.FindNode("Nope"), nullptr);
  EXPECT_NE(s.FindEdge("OWNS"), nullptr);
  EXPECT_EQ(s.FindEdge("NOPE"), nullptr);
  ASSERT_NE(s.FindNode("Person")->FindAttribute("code"), nullptr);
  EXPECT_TRUE(s.FindNode("Person")->FindAttribute("code")->is_id);
}

TEST(SuperSchemaTest, HierarchyNavigation) {
  SuperSchema s = SmallSchema();
  EXPECT_EQ(s.AncestorsOf("Business"),
            (std::vector<std::string>{"LegalPerson", "Person"}));
  EXPECT_TRUE(s.AncestorsOf("Person").empty());
  EXPECT_EQ(s.DescendantsOf("Person"),
            (std::vector<std::string>{"Business", "LegalPerson",
                                      "PhysicalPerson"}));
  EXPECT_EQ(s.RootOf("Business"), "Person");
  EXPECT_EQ(s.RootOf("Person"), "Person");
  EXPECT_TRUE(s.IsLeaf("Business"));
  EXPECT_FALSE(s.IsLeaf("Person"));
  EXPECT_EQ(s.LeavesUnder("Person"),
            (std::vector<std::string>{"Business", "PhysicalPerson"}));
}

TEST(SuperSchemaTest, EffectiveAttributesInherit) {
  SuperSchema s = SmallSchema();
  auto attrs = s.EffectiveAttributes("Business");
  // capital + legalNature + code + name.
  EXPECT_EQ(attrs.size(), 4u);
  auto ids = s.EffectiveIdAttributes("Business");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0].name, "code");
}

TEST(SuperSchemaTest, ValidationAcceptsGoodSchema) {
  EXPECT_TRUE(SmallSchema().Validate().ok());
}

TEST(SuperSchemaTest, DuplicateNodeRejected) {
  SuperSchema s("S");
  s.AddNode("A", {IdAttr("id")});
  s.AddNode("A", {IdAttr("id")});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SuperSchemaTest, DuplicateEdgeTypeRejected) {
  // Super-schemas are simple graphs by construction (one SM_Type per edge).
  SuperSchema s("S");
  s.AddNode("A", {IdAttr("id")});
  s.AddEdge("E", "A", "A");
  s.AddEdge("E", "A", "A");
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SuperSchemaTest, UnknownEndpointsRejected) {
  SuperSchema s("S");
  s.AddNode("A", {IdAttr("id")});
  s.AddEdge("E", "A", "Missing");
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SuperSchemaTest, MultipleParentsRejected) {
  SuperSchema s("S");
  s.AddNode("A", {IdAttr("id")});
  s.AddNode("B", {IdAttr("id")});
  s.AddNode("C");
  s.AddGeneralization("A", {"C"}, false, false);
  s.AddGeneralization("B", {"C"}, false, false);
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SuperSchemaTest, GeneralizationCycleRejected) {
  SuperSchema s("S");
  s.AddNode("A", {IdAttr("id")});
  s.AddNode("B");
  s.AddGeneralization("A", {"B"}, false, false);
  s.AddGeneralization("B", {"A"}, false, false);
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SuperSchemaTest, MissingIdentifierRejected) {
  SuperSchema s("S");
  s.AddNode("A", {Attr("x")});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SuperSchemaTest, InheritedIdentifierAccepted) {
  SuperSchema s("S");
  s.AddNode("A", {IdAttr("id")});
  s.AddNode("B");  // id inherited from A
  s.AddGeneralization("A", {"B"}, false, false);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(SuperSchemaTest, OptionalIdRejected) {
  SuperSchema s("S");
  AttributeDef bad = IdAttr("id");
  bad.optional = true;
  s.AddNode("A", {bad});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SuperSchemaTest, EdgeIdAttributeRejected) {
  SuperSchema s("S");
  s.AddNode("A", {IdAttr("id")});
  s.AddEdge("E", "A", "A", Cardinality::ZeroOrMore(),
            Cardinality::ZeroOrMore(), {IdAttr("bad")});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SuperSchemaTest, CardinalityRendering) {
  EXPECT_EQ(Cardinality::ZeroOrOne().ToString(), "(0,1)");
  EXPECT_EQ(Cardinality::ExactlyOne().ToString(), "(1,1)");
  EXPECT_EQ(Cardinality::ZeroOrMore().ToString(), "(0,N)");
  EXPECT_EQ(Cardinality::OneOrMore().ToString(), "(1,N)");
}

TEST(CompanyKgTest, Figure4SchemaValidates) {
  core::SuperSchema s = finkg::CompanyKgSchema();
  EXPECT_TRUE(s.Validate().ok()) << s.Validate().ToString();
  EXPECT_EQ(s.schema_oid(), 123);  // Example 5.1 uses schemaOID 123
  // The narrative's key design decisions.
  EXPECT_EQ(s.AncestorsOf("PublicListedCompany"),
            (std::vector<std::string>{"Business", "LegalPerson", "Person"}));
  ASSERT_NE(s.FindEdge("HOLDS"), nullptr);
  EXPECT_TRUE(s.FindEdge("HOLDS")->many_to_many());
  ASSERT_NE(s.FindEdge("BELONGS_TO"), nullptr);
  EXPECT_TRUE(s.FindEdge("BELONGS_TO")->source.functional);
  ASSERT_NE(s.FindEdge("CONTROLS"), nullptr);
  EXPECT_TRUE(s.FindEdge("CONTROLS")->intensional);
  ASSERT_NE(s.FindNode("Family"), nullptr);
  EXPECT_TRUE(s.FindNode("Family")->intensional);
  // numberOfStakeholders is an intensional property of Business.
  const core::NodeDef* business = s.FindNode("Business");
  ASSERT_NE(business, nullptr);
  const core::AttributeDef* n = business->FindAttribute(
      "numberOfStakeholders");
  ASSERT_NE(n, nullptr);
  EXPECT_TRUE(n->intensional);
}

TEST(CompanyKgTest, SummaryCountsConstructs) {
  core::SuperSchema s = finkg::CompanyKgSchema();
  std::string summary = s.Summary();
  EXPECT_NE(summary.find("CompanyKG"), std::string::npos);
  EXPECT_NE(summary.find("generalizations"), std::string::npos);
}

}  // namespace
}  // namespace kgm::core
