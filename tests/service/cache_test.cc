// LruCache key-collision behavior: entries store their full key material
// and verify it on every hit, so two distinct keys whose 64-bit hashes
// collide can never serve each other's values — a forced collision is a
// miss (counted in key_collisions), not wrong data.

#include "service/cache.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "metalog/prepared.h"

namespace kgm::service {
namespace {

// Every key hashes to the same bucket; equality is by payload.  This is
// the adversarial case: without full-key verification, any two keys would
// alias each other's cached values.
struct CollidingKey {
  std::string payload;
  uint64_t Hash() const { return 42; }
  bool operator==(const CollidingKey& other) const {
    return payload == other.payload;
  }
};

TEST(LruCacheTest, BasicHitAndMiss) {
  LruCache<CollidingKey, std::string> cache(4);
  EXPECT_EQ(cache.Get(CollidingKey{"a"}), nullptr);
  cache.Put(CollidingKey{"a"}, std::make_shared<const std::string>("va"));
  auto hit = cache.Get(CollidingKey{"a"});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "va");
  EXPECT_EQ(cache.counters().hits, 1u);
  EXPECT_EQ(cache.counters().misses, 1u);
  EXPECT_EQ(cache.counters().key_collisions, 0u);
}

TEST(LruCacheTest, ForcedCollisionIsAMissNotWrongData) {
  LruCache<CollidingKey, std::string> cache(4);
  cache.Put(CollidingKey{"a"}, std::make_shared<const std::string>("va"));

  // Same hash, different key: must NOT return "va".
  auto other = cache.Get(CollidingKey{"b"});
  EXPECT_EQ(other, nullptr);
  EXPECT_EQ(cache.counters().key_collisions, 1u);
  EXPECT_EQ(cache.counters().misses, 1u);

  // The original entry still serves its own key.
  auto hit = cache.Get(CollidingKey{"a"});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "va");
}

TEST(LruCacheTest, CollidingPutDisplacesInsteadOfAliasing) {
  LruCache<CollidingKey, std::string> cache(4);
  cache.Put(CollidingKey{"a"}, std::make_shared<const std::string>("va"));
  cache.Put(CollidingKey{"b"}, std::make_shared<const std::string>("vb"));
  EXPECT_EQ(cache.counters().key_collisions, 1u);

  // "b" displaced "a" (one entry per hash slot); each key only ever sees
  // its own value.
  auto b = cache.Get(CollidingKey{"b"});
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(*b, "vb");
  EXPECT_EQ(cache.Get(CollidingKey{"a"}), nullptr);
}

TEST(LruCacheTest, SameKeyPutReplacesValue) {
  LruCache<CollidingKey, std::string> cache(4);
  cache.Put(CollidingKey{"a"}, std::make_shared<const std::string>("v1"));
  cache.Put(CollidingKey{"a"}, std::make_shared<const std::string>("v2"));
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Get(CollidingKey{"a"});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "v2");
  EXPECT_EQ(cache.counters().key_collisions, 0u);
}

struct DistinctKey {
  int id = 0;
  uint64_t Hash() const { return static_cast<uint64_t>(id) * 0x9E3779B9; }
  bool operator==(const DistinctKey& other) const { return id == other.id; }
};

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<DistinctKey, int> cache(2);
  cache.Put(DistinctKey{1}, std::make_shared<const int>(1));
  cache.Put(DistinctKey{2}, std::make_shared<const int>(2));
  ASSERT_NE(cache.Get(DistinctKey{1}), nullptr);  // 1 is now MRU
  cache.Put(DistinctKey{3}, std::make_shared<const int>(3));
  EXPECT_EQ(cache.Get(DistinctKey{2}), nullptr);  // 2 was LRU, evicted
  EXPECT_NE(cache.Get(DistinctKey{1}), nullptr);
  EXPECT_NE(cache.Get(DistinctKey{3}), nullptr);
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(LruCacheTest, ForEachVisitsEntriesForCarryForward) {
  LruCache<DistinctKey, int> cache(4);
  cache.Put(DistinctKey{1}, std::make_shared<const int>(10));
  cache.Put(DistinctKey{2}, std::make_shared<const int>(20));
  int sum = 0;
  cache.ForEach([&](const DistinctKey& key,
                    const std::shared_ptr<const int>& value) {
    sum += key.id + *value;
  });
  EXPECT_EQ(sum, 33);
}

// PreparedCache canonical keys: the full key material covers the source
// text, the catalog's labels/properties, and the translation options, so
// two compilations that differ in any of them can never verify as equal —
// regardless of what their fingerprints hash to.
TEST(PreparedCacheTest, CanonicalKeySeparatesSourceCatalogAndOptions) {
  metalog::GraphCatalog catalog;
  catalog.AddNodeLabel("Item", {"n"});
  catalog.AddEdgeLabel("LINK", {});
  metalog::GraphCatalog wider = catalog;
  wider.AddNodeLabel("Other", {});

  metalog::MtvOptions options;
  const std::string base =
      metalog::PreparedCache::CanonicalKey("src", catalog, options);
  EXPECT_NE(base,
            metalog::PreparedCache::CanonicalKey("src2", catalog, options));
  EXPECT_NE(base,
            metalog::PreparedCache::CanonicalKey("src", wider, options));
  metalog::MtvOptions other_options;
  other_options.max_stars_per_rule = 7;
  EXPECT_NE(base, metalog::PreparedCache::CanonicalKey("src", catalog,
                                                       other_options));
  EXPECT_EQ(base,
            metalog::PreparedCache::CanonicalKey("src", catalog, options));
}

TEST(PreparedCacheTest, HitsVerifyFullKeyAndCountCollisions) {
  metalog::GraphCatalog catalog;
  catalog.AddNodeLabel("Item", {"n"});
  catalog.AddEdgeLabel("LINK", {});
  metalog::PreparedCache cache(8);
  const char* program =
      "(x: Item)[: LINK](y: Item) -> exists e (x)[e: LINK2](y).";
  auto first = cache.Compile(program, catalog, {});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cache.Compile(program, catalog, {});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same shared entry
  EXPECT_EQ(cache.counters().hits, 1u);
  EXPECT_EQ(cache.counters().misses, 1u);
  // No collision occurred; the counter exists and stays zero.
  EXPECT_EQ(cache.counters().key_collisions, 0u);
}

}  // namespace
}  // namespace kgm::service
