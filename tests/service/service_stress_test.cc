// Concurrency torture for the serving layer: readers keep querying while a
// publisher swaps epochs underneath them.  Every result must be internally
// consistent with the epoch it reports — a torn read (rows from one epoch,
// stamp from another) is the failure mode epoch snapshots exist to prevent.
// Run under TSan via tools/check.sh.

#include "service/service.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace kgm::service {
namespace {

// Epoch k publishes a chain with (kBaseEdges + k) LINK edges, so the
// expected row count identifies the epoch that produced a result.
constexpr size_t kBaseEdges = 3;

pg::PropertyGraph GraphForEpoch(size_t k) {
  const size_t nodes = kBaseEdges + k + 1;
  pg::PropertyGraph g;
  std::vector<pg::NodeId> ids;
  for (size_t i = 0; i < nodes; ++i) {
    ids.push_back(g.AddNode("Item", {{"n", Value(int64_t(i))}}));
  }
  for (size_t i = 0; i + 1 < nodes; ++i) {
    g.AddEdge(ids[i], ids[i + 1], "LINK");
  }
  return g;
}

const char kCopyLinks[] =
    "(x: Item)[: LINK](y: Item) -> exists e (x)[e: LINK2](y).";

TEST(ServiceStressTest, ReadersSeeConsistentEpochsAcrossPublishes) {
  KgServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 64;
  KgService svc(options);
  const uint64_t first_epoch = svc.Publish(GraphForEpoch(1));
  ASSERT_EQ(first_epoch, 1u);

  constexpr size_t kEpochs = 8;
  constexpr size_t kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<size_t> checked{0};
  std::atomic<size_t> cache_hits{0};
  std::atomic<size_t> failures{0};

  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        QueryRequest request;
        request.program = kCopyLinks;
        request.output = "LINK2";
        // Alternate cached and uncached evaluations per reader.
        request.use_result_cache = ((r + i++) % 2) == 0;
        auto result = svc.Query(request);
        if (!result.ok()) {
          // Admission rejections are legal under load; anything else is
          // not.
          if (result.status().code() != StatusCode::kUnavailable) {
            failures.fetch_add(1);
          }
          continue;
        }
        // rows must match the epoch the result claims, whatever epoch is
        // current by now.
        const size_t expected = kBaseEdges + (result->epoch);
        if (result->rows->size() != expected) {
          ADD_FAILURE() << "torn read: epoch " << result->epoch << " with "
                        << result->rows->size() << " rows, expected "
                        << expected;
          failures.fetch_add(1);
        }
        if (result->result_cache_hit) cache_hits.fetch_add(1);
        checked.fetch_add(1);
      }
    });
  }

  for (size_t k = 2; k <= kEpochs; ++k) {
    const uint64_t epoch = svc.Publish(GraphForEpoch(k));
    EXPECT_EQ(epoch, k);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(checked.load(), 0u);
  EXPECT_EQ(svc.CurrentEpoch(), kEpochs);

  // After the last publish, a cached query must reflect the final epoch.
  QueryRequest request;
  request.program = kCopyLinks;
  request.output = "LINK2";
  auto final_result = svc.Query(request);
  ASSERT_TRUE(final_result.ok()) << final_result.status().ToString();
  EXPECT_EQ(final_result->epoch, kEpochs);
  EXPECT_EQ(final_result->rows->size(), kBaseEdges + kEpochs);
}

TEST(ServiceStressTest, TinyQueueUnderLoadConservesRequests) {
  KgServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 1;
  KgService svc(options);
  svc.Publish(GraphForEpoch(1));

  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 40;
  std::atomic<size_t> ok{0};
  std::atomic<size_t> rejected{0};
  std::atomic<size_t> other{0};

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < kPerThread; ++i) {
        QueryRequest request;
        request.program = kCopyLinks;
        request.output = "LINK2";
        auto result = svc.Query(request);
        if (result.ok()) {
          ok.fetch_add(1);
        } else if (result.status().code() == StatusCode::kUnavailable) {
          rejected.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Every request either succeeded or was rejected at admission — nothing
  // lost, nothing failed, no deadlock.
  EXPECT_EQ(ok.load() + rejected.load(), kThreads * kPerThread);
  EXPECT_EQ(other.load(), 0u);
  EXPECT_GT(ok.load(), 0u);

  StatsSnapshot stats = svc.Stats();
  EXPECT_EQ(stats.queue_rejected, rejected.load());
  EXPECT_EQ(stats.queries_ok, ok.load());
  EXPECT_EQ(stats.queue_depth, 0u);
}

}  // namespace
}  // namespace kgm::service
