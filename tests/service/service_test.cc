// KgService behavior: publication, the two cache layers, admission
// control, deadlines and the error taxonomy.

#include "service/service.h"

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace kgm::service {
namespace {

// A chain of `n` Item nodes connected by LINK edges.
pg::PropertyGraph ChainGraph(int n) {
  pg::PropertyGraph g;
  std::vector<pg::NodeId> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(g.AddNode("Item", {{"n", Value(int64_t{i})}}));
  }
  for (int i = 0; i + 1 < n; ++i) {
    g.AddEdge(nodes[i], nodes[i + 1], "LINK");
  }
  return g;
}

// Copies every LINK edge to a derived LINK2 edge.
const char kCopyLinks[] =
    "(x: Item)[: LINK](y: Item) -> exists e (x)[e: LINK2](y).";

QueryRequest CopyLinksRequest() {
  QueryRequest request;
  request.program = kCopyLinks;
  request.language = QueryLanguage::kMetaLog;
  request.output = "LINK2";
  return request;
}

TEST(ServiceTest, QueryBeforePublishFails) {
  KgService svc;
  auto result = svc.Query(CopyLinksRequest());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServiceTest, PublishAndQuery) {
  KgService svc;
  EXPECT_EQ(svc.CurrentEpoch(), 0u);
  const uint64_t epoch = svc.Publish(ChainGraph(6));
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(svc.CurrentEpoch(), 1u);

  auto result = svc.Query(CopyLinksRequest());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->epoch, 1u);
  EXPECT_FALSE(result->result_cache_hit);
  EXPECT_EQ(result->rows->size(), 5u);  // 5 LINK edges copied
  // Edge encoding: oid, from, to (LINK2 has no properties).
  ASSERT_EQ(result->columns.size(), 3u);
  EXPECT_EQ(result->columns[0], "oid");
  EXPECT_EQ(result->columns[1], "from");
  EXPECT_EQ(result->columns[2], "to");
}

TEST(ServiceTest, ResultCacheHitOnRepeat) {
  KgService svc;
  svc.Publish(ChainGraph(5));
  auto first = svc.Query(CopyLinksRequest());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->result_cache_hit);

  auto second = svc.Query(CopyLinksRequest());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->result_cache_hit);
  // The cached rows are shared, not recomputed.
  EXPECT_EQ(second->rows.get(), first->rows.get());

  StatsSnapshot stats = svc.Stats();
  EXPECT_EQ(stats.result_cache_hits, 1u);
  EXPECT_EQ(stats.result_cache_misses, 1u);
  EXPECT_EQ(stats.queries_ok, 2u);
}

TEST(ServiceTest, ResultCacheCanBeBypassed) {
  KgService svc;
  svc.Publish(ChainGraph(5));
  QueryRequest request = CopyLinksRequest();
  request.use_result_cache = false;
  auto first = svc.Query(request);
  auto second = svc.Query(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->result_cache_hit);
  EXPECT_NE(second->rows.get(), first->rows.get());
}

TEST(ServiceTest, PreparedCacheReusedAcrossEpochs) {
  KgService svc;
  svc.Publish(ChainGraph(4));
  ASSERT_TRUE(svc.Query(CopyLinksRequest()).ok());
  // Same label catalog, so the compiled program is reused even though the
  // result cache was invalidated.
  svc.Publish(ChainGraph(7));
  auto result = svc.Query(CopyLinksRequest());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->epoch, 2u);
  EXPECT_FALSE(result->result_cache_hit);
  EXPECT_EQ(result->rows->size(), 6u);

  StatsSnapshot stats = svc.Stats();
  EXPECT_EQ(stats.prepared_cache_misses, 1u);
  EXPECT_EQ(stats.prepared_cache_hits, 1u);
}

TEST(ServiceTest, PublishInvalidatesResultCache) {
  KgService svc;
  svc.Publish(ChainGraph(5));
  auto before = svc.Query(CopyLinksRequest());
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows->size(), 4u);

  svc.Publish(ChainGraph(9));
  auto after = svc.Query(CopyLinksRequest());
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->result_cache_hit);
  EXPECT_EQ(after->epoch, 2u);
  EXPECT_EQ(after->rows->size(), 8u);
}

TEST(ServiceTest, CompileErrorIsReported) {
  KgService svc;
  svc.Publish(ChainGraph(3));
  QueryRequest request;
  request.program = "this is not metalog";
  request.output = "X";
  auto result = svc.Query(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
      << result.status().ToString();

  StatsSnapshot stats = svc.Stats();
  EXPECT_EQ(stats.queries_failed, 1u);
}

TEST(ServiceTest, VadalogQueryRunsOverEncoding) {
  KgService svc;
  svc.Publish(ChainGraph(4));
  QueryRequest request;
  // The encoding exposes LINK edges as LINK(oid, from, to).
  request.program =
      "LINK(e, x, y) -> hop(x, y).\n"
      "hop(x, y), LINK(e, y, z) -> hop(x, z).";
  request.language = QueryLanguage::kVadalog;
  request.output = "hop";
  auto result = svc.Query(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Closure of a 3-edge chain: 3 + 2 + 1 pairs.
  EXPECT_EQ(result->rows->size(), 6u);
}

TEST(ServiceTest, ZeroCapacityQueueRejectsDeterministically) {
  KgServiceOptions options;
  options.queue_capacity = 0;
  KgService svc(options);
  svc.Publish(ChainGraph(3));

  auto queued = svc.Query(CopyLinksRequest());
  ASSERT_FALSE(queued.ok());
  EXPECT_EQ(queued.status().code(), StatusCode::kUnavailable);

  // Execute bypasses admission control and still works.
  auto direct = svc.Execute(CopyLinksRequest());
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(direct->rows->size(), 2u);

  StatsSnapshot stats = svc.Stats();
  EXPECT_EQ(stats.queue_rejected, 1u);
}

TEST(ServiceTest, DeadlineExceededThroughService) {
  KgService svc;
  svc.Publish(ChainGraph(3));
  // A big closure with a 1ms budget: the engine's cooperative checks cut
  // it off mid-fixpoint.
  std::ostringstream program;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    program << "@fact edge(" << i << ", " << (i + 1) % n << ").\n";
  }
  program << "edge(x, y) -> path(x, y).\n";
  program << "path(x, y), edge(y, z) -> path(x, z).\n";

  QueryRequest request;
  request.program = program.str();
  request.language = QueryLanguage::kVadalog;
  request.output = "path";
  request.timeout_ms = 1;
  auto result = svc.Query(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();

  StatsSnapshot stats = svc.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
}

TEST(ServiceTest, StatsJsonIsWellFormed) {
  KgService svc;
  svc.Publish(ChainGraph(3));
  ASSERT_TRUE(svc.Query(CopyLinksRequest()).ok());
  std::string json = svc.Stats().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"queries_ok\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"epoch\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency_p50\":"), std::string::npos) << json;
}

// Builds a one-delete + one-insert LINK delta from the snapshot's own
// encoding: the deleted tuple is the first LINK row; the inserted tuple
// recombines existing oids/endpoints into a row the relation doesn't have.
vadalog::EdbDelta OneLinkDelta(const Snapshot& snap,
                               vadalog::Tuple* removed_out = nullptr,
                               vadalog::Tuple* added_out = nullptr) {
  const vadalog::Relation& link = *snap.facts.at("LINK");
  vadalog::Tuple removed = link.tuple(0);
  // (oid of edge 1, source of edge 0, target of edge 1): a fresh row on any
  // chain of >= 3 nodes.
  vadalog::Tuple added = {link.tuple(1)[0], link.tuple(0)[1],
                          link.tuple(1)[2]};
  EXPECT_FALSE(link.Contains(added));
  vadalog::EdbDelta delta;
  delta.deletes["LINK"].push_back(removed);
  delta.inserts["LINK"].push_back(added);
  if (removed_out != nullptr) *removed_out = std::move(removed);
  if (added_out != nullptr) *added_out = std::move(added);
  return delta;
}

TEST(ServiceTest, ApplyDeltaPublishesStructurallySharedSnapshot) {
  KgService svc;
  svc.Publish(ChainGraph(5));
  std::shared_ptr<const Snapshot> snap1 = svc.CurrentSnapshot();
  ASSERT_NE(snap1, nullptr);

  vadalog::Tuple removed, added;
  auto epoch = svc.ApplyDelta(OneLinkDelta(*snap1, &removed, &added));
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, 2u);

  std::shared_ptr<const Snapshot> snap2 = svc.CurrentSnapshot();
  ASSERT_NE(snap2, nullptr);
  EXPECT_TRUE(snap2->is_delta);
  // Only the touched relation is re-materialized; everything else — the
  // Item relation, the property graph — is shared with epoch 1 by pointer.
  EXPECT_EQ(snap2->facts.at("Item").get(), snap1->facts.at("Item").get());
  EXPECT_NE(snap2->facts.at("LINK").get(), snap1->facts.at("LINK").get());
  EXPECT_EQ(snap2->graph.get(), snap1->graph.get());
  EXPECT_FALSE(snap2->facts.at("LINK")->Contains(removed));
  EXPECT_TRUE(snap2->facts.at("LINK")->Contains(added));
  // The old snapshot is untouched: a pinned reader still sees epoch 1.
  EXPECT_TRUE(snap1->facts.at("LINK")->Contains(removed));

  // Queries run against the delta-applied encoding (4 - 1 + 1 edges).
  auto result = svc.Query(CopyLinksRequest());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->epoch, 2u);
  EXPECT_EQ(result->rows->size(), 4u);

  StatsSnapshot stats = svc.Stats();
  EXPECT_EQ(stats.publishes, 2u);       // full + delta
  EXPECT_EQ(stats.delta_publishes, 1u);
  EXPECT_EQ(stats.epoch, 2u);
}

TEST(ServiceTest, ApplyDeltaCarriesForwardUntouchedResults) {
  KgService svc;
  svc.Publish(ChainGraph(5));

  // One query that reads only Item, one that reads LINK.
  QueryRequest items;
  items.program = "Item(o, n) -> item_copy(o, n).";
  items.language = QueryLanguage::kVadalog;
  items.output = "item_copy";
  auto items_before = svc.Query(items);
  ASSERT_TRUE(items_before.ok()) << items_before.status().ToString();
  EXPECT_FALSE(items_before->result_cache_hit);
  ASSERT_TRUE(svc.Query(CopyLinksRequest()).ok());

  auto epoch = svc.ApplyDelta(OneLinkDelta(*svc.CurrentSnapshot()));
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();

  // The Item-only entry was carried to the new epoch: hit, shared rows.
  auto items_after = svc.Query(items);
  ASSERT_TRUE(items_after.ok()) << items_after.status().ToString();
  EXPECT_TRUE(items_after->result_cache_hit);
  EXPECT_EQ(items_after->epoch, 2u);
  EXPECT_EQ(items_after->rows.get(), items_before->rows.get());

  // The LINK-reading entry was not: the delta changed its input relation.
  auto links_after = svc.Query(CopyLinksRequest());
  ASSERT_TRUE(links_after.ok()) << links_after.status().ToString();
  EXPECT_FALSE(links_after->result_cache_hit);
  EXPECT_EQ(links_after->epoch, 2u);
}

TEST(ServiceTest, DeltaSnapshotRejectsEncodingWideningQueries) {
  KgService svc;
  svc.Publish(ChainGraph(4));
  ASSERT_TRUE(svc.ApplyDelta(OneLinkDelta(*svc.CurrentSnapshot())).ok());

  // Mentions an unseen Item property: on a full snapshot this falls back
  // to re-encoding the graph, but a delta snapshot's graph is stale — the
  // service must refuse rather than silently dropping the delta.
  QueryRequest request;
  request.program =
      "(x: Item; extra: v)[: LINK](y: Item) -> exists e (x)[e: LINK3](y).";
  request.output = "LINK3";
  auto result = svc.Query(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition)
      << result.status().ToString();

  // Publishing a full graph clears the condition.
  svc.Publish(ChainGraph(4));
  auto retried = svc.Query(request);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_TRUE(retried->fresh_encoding);
}

TEST(ServiceTest, ApplyDeltaValidatesPredicatesAndArity) {
  KgService svc;

  vadalog::EdbDelta delta;
  delta.inserts["LINK"].push_back({Value(int64_t{1})});
  auto before_publish = svc.ApplyDelta(delta);
  ASSERT_FALSE(before_publish.ok());
  EXPECT_EQ(before_publish.status().code(), StatusCode::kFailedPrecondition);

  svc.Publish(ChainGraph(3));

  vadalog::EdbDelta unknown;
  unknown.inserts["NO_SUCH_RELATION"].push_back({Value(int64_t{1})});
  auto unknown_result = svc.ApplyDelta(unknown);
  ASSERT_FALSE(unknown_result.ok());
  EXPECT_EQ(unknown_result.status().code(), StatusCode::kInvalidArgument);

  vadalog::EdbDelta bad_arity;
  bad_arity.deletes["LINK"].push_back({Value(int64_t{1})});  // LINK is arity 3
  auto arity_result = svc.ApplyDelta(bad_arity);
  ASSERT_FALSE(arity_result.ok());
  EXPECT_EQ(arity_result.status().code(), StatusCode::kInvalidArgument);

  // Rejected deltas publish nothing.
  EXPECT_EQ(svc.CurrentEpoch(), 1u);
  EXPECT_EQ(svc.Stats().delta_publishes, 0u);
}

TEST(ServiceTest, StatsCountRejectionsSeparatelyFromCompletedQueries) {
  KgServiceOptions options;
  options.queue_capacity = 0;  // every Query() is bounced at admission
  KgService svc(options);
  svc.Publish(ChainGraph(4));

  // Two completed-ok, one completed-failed (all via Execute, which bypasses
  // admission), and three admission rejections.
  ASSERT_TRUE(svc.Execute(CopyLinksRequest()).ok());
  QueryRequest uncached = CopyLinksRequest();
  uncached.use_result_cache = false;
  ASSERT_TRUE(svc.Execute(uncached).ok());
  QueryRequest bad;
  bad.program = "this is not metalog";
  bad.output = "X";
  ASSERT_FALSE(svc.Execute(bad).ok());
  for (int i = 0; i < 3; ++i) {
    auto rejected = svc.Query(CopyLinksRequest());
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  }

  StatsSnapshot stats = svc.Stats();
  EXPECT_EQ(stats.queries_ok, 2u);
  EXPECT_EQ(stats.queries_failed, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 0u);
  EXPECT_EQ(stats.queue_rejected, 3u);
  // The contract: queries_total counts completed queries only — rejections
  // are reported separately and never inflate throughput.
  EXPECT_EQ(stats.queries_total,
            stats.queries_ok + stats.queries_failed + stats.deadline_exceeded);
  EXPECT_EQ(stats.queries_total, 3u);
  ASSERT_GT(stats.uptime_seconds, 0.0);
  EXPECT_NEAR(stats.qps * stats.uptime_seconds,
              static_cast<double>(stats.queries_total), 1e-6);

  std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"queries_total\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queue_rejected\":3"), std::string::npos) << json;
}

TEST(ServiceTest, WidenedCatalogFallsBackToFreshEncoding) {
  KgService svc;
  svc.Publish(ChainGraph(4));
  // Mentions an Item property the graph never had: the compiled catalog
  // widens Item's property list, so the snapshot encoding is incompatible
  // and the graph is re-encoded for this query.
  QueryRequest request;
  request.program =
      "(x: Item; extra: v)[: LINK](y: Item) -> exists e (x)[e: LINK3](y).";
  request.output = "LINK3";
  auto result = svc.Query(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->fresh_encoding);
}

// ------------------------------------------------------------- Point query

// The closure-over-LINK program the point-query tests share.
QueryRequest HopClosureRequest() {
  QueryRequest request;
  request.program =
      "LINK(e, x, y) -> hop(x, y).\n"
      "hop(x, y), LINK(e, y, z) -> hop(x, z).";
  request.language = QueryLanguage::kVadalog;
  request.output = "hop";
  return request;
}

TEST(ServiceTest, PointQueryRoutesThroughMagicAndMatchesMaterialize) {
  KgService svc;
  svc.Publish(ChainGraph(8));
  const Value source = svc.CurrentSnapshot()->facts.at("LINK")->tuple(0)[1];

  QueryRequest request = HopClosureRequest();
  request.use_result_cache = false;
  request.bound_args = {source, std::nullopt};
  auto magic = svc.Query(request);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  EXPECT_EQ(magic->point_mode, vadalog::magic::PointQueryMode::kMagic)
      << magic->point_fallback;
  // Bound on the chain head: the whole 7-hop suffix.
  EXPECT_EQ(magic->rows->size(), 7u);
  for (const vadalog::Tuple& t : *magic->rows) EXPECT_EQ(t[0], source);

  request.use_point_query = false;
  auto baseline = svc.Query(request);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ(baseline->point_mode, vadalog::magic::PointQueryMode::kMaterialize);
  EXPECT_EQ(baseline->rows->size(), magic->rows->size());
  // The rewrite only explores the bound cone; the baseline pays the full
  // closure plus the output filter scan.
  EXPECT_LT(magic->join_probes, baseline->join_probes);

  // An extensional output with a binding is a plain indexed lookup.
  QueryRequest edb = HopClosureRequest();
  edb.output = "LINK";
  edb.use_result_cache = false;
  edb.bound_args = {std::nullopt, source, std::nullopt};
  auto lookup = svc.Query(edb);
  ASSERT_TRUE(lookup.ok()) << lookup.status().ToString();
  EXPECT_EQ(lookup->point_mode, vadalog::magic::PointQueryMode::kEdbLookup);
  EXPECT_EQ(lookup->rows->size(), 1u);

  StatsSnapshot stats = svc.Stats();
  EXPECT_EQ(stats.point_magic, 1u);
  EXPECT_EQ(stats.point_materialize, 1u);
  EXPECT_EQ(stats.point_edb_lookup, 1u);
  EXPECT_EQ(stats.point_queries, 3u);
  EXPECT_GE(stats.magic_rewrites, 1u);
  EXPECT_GT(stats.magic_probes, 0u);
  std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"magic\":{\"point_queries\":3"), std::string::npos)
      << json;
}

TEST(ServiceTest, PointQueryResultCacheKeysOnBindingAndRoute) {
  KgService svc;
  svc.Publish(ChainGraph(6));
  const vadalog::Relation& link = *svc.CurrentSnapshot()->facts.at("LINK");

  QueryRequest request = HopClosureRequest();
  request.bound_args = {link.tuple(0)[1], std::nullopt};
  auto first = svc.Query(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->result_cache_hit);

  // Same binding again: a hit that restores the recorded routing outcome.
  auto repeat = svc.Query(request);
  ASSERT_TRUE(repeat.ok()) << repeat.status().ToString();
  EXPECT_TRUE(repeat->result_cache_hit);
  EXPECT_EQ(repeat->rows.get(), first->rows.get());
  EXPECT_EQ(repeat->point_mode, first->point_mode);
  EXPECT_EQ(repeat->join_probes, first->join_probes);

  // A different binding is a different entry.
  QueryRequest other = request;
  other.bound_args = {link.tuple(1)[1], std::nullopt};
  auto different = svc.Query(other);
  ASSERT_TRUE(different.ok()) << different.status().ToString();
  EXPECT_FALSE(different->result_cache_hit);

  // Same binding, forced-materialize route: the rows agree but the
  // recorded counters don't, so it must not share the magic entry.
  QueryRequest forced = request;
  forced.use_point_query = false;
  auto baseline = svc.Query(forced);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_FALSE(baseline->result_cache_hit);
  EXPECT_EQ(baseline->rows->size(), first->rows->size());

  // Value equality is type-strict, so an int binding and a double
  // binding that render alike have different answer sets; the key
  // serializer must not collapse them (42 vs 42.0 share ToString
  // output).
  QueryRequest as_int = request;
  as_int.bound_args = {Value(int64_t{42}), std::nullopt};
  auto int_bound = svc.Query(as_int);
  ASSERT_TRUE(int_bound.ok()) << int_bound.status().ToString();
  EXPECT_FALSE(int_bound->result_cache_hit);
  QueryRequest as_double = request;
  as_double.bound_args = {Value(42.0), std::nullopt};
  auto double_bound = svc.Query(as_double);
  ASSERT_TRUE(double_bound.ok()) << double_bound.status().ToString();
  EXPECT_FALSE(double_bound->result_cache_hit);

  // A bound request and the unbound request never collide either.
  auto unbound = svc.Query(HopClosureRequest());
  ASSERT_TRUE(unbound.ok()) << unbound.status().ToString();
  EXPECT_FALSE(unbound->result_cache_hit);
  EXPECT_EQ(unbound->point_mode, vadalog::magic::PointQueryMode::kOff);
  EXPECT_GT(unbound->rows->size(), first->rows->size());
}

}  // namespace
}  // namespace kgm::service
