// KgService behavior: publication, the two cache layers, admission
// control, deadlines and the error taxonomy.

#include "service/service.h"

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace kgm::service {
namespace {

// A chain of `n` Item nodes connected by LINK edges.
pg::PropertyGraph ChainGraph(int n) {
  pg::PropertyGraph g;
  std::vector<pg::NodeId> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(g.AddNode("Item", {{"n", Value(int64_t{i})}}));
  }
  for (int i = 0; i + 1 < n; ++i) {
    g.AddEdge(nodes[i], nodes[i + 1], "LINK");
  }
  return g;
}

// Copies every LINK edge to a derived LINK2 edge.
const char kCopyLinks[] =
    "(x: Item)[: LINK](y: Item) -> exists e (x)[e: LINK2](y).";

QueryRequest CopyLinksRequest() {
  QueryRequest request;
  request.program = kCopyLinks;
  request.language = QueryLanguage::kMetaLog;
  request.output = "LINK2";
  return request;
}

TEST(ServiceTest, QueryBeforePublishFails) {
  KgService svc;
  auto result = svc.Query(CopyLinksRequest());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServiceTest, PublishAndQuery) {
  KgService svc;
  EXPECT_EQ(svc.CurrentEpoch(), 0u);
  const uint64_t epoch = svc.Publish(ChainGraph(6));
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(svc.CurrentEpoch(), 1u);

  auto result = svc.Query(CopyLinksRequest());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->epoch, 1u);
  EXPECT_FALSE(result->result_cache_hit);
  EXPECT_EQ(result->rows->size(), 5u);  // 5 LINK edges copied
  // Edge encoding: oid, from, to (LINK2 has no properties).
  ASSERT_EQ(result->columns.size(), 3u);
  EXPECT_EQ(result->columns[0], "oid");
  EXPECT_EQ(result->columns[1], "from");
  EXPECT_EQ(result->columns[2], "to");
}

TEST(ServiceTest, ResultCacheHitOnRepeat) {
  KgService svc;
  svc.Publish(ChainGraph(5));
  auto first = svc.Query(CopyLinksRequest());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->result_cache_hit);

  auto second = svc.Query(CopyLinksRequest());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->result_cache_hit);
  // The cached rows are shared, not recomputed.
  EXPECT_EQ(second->rows.get(), first->rows.get());

  StatsSnapshot stats = svc.Stats();
  EXPECT_EQ(stats.result_cache_hits, 1u);
  EXPECT_EQ(stats.result_cache_misses, 1u);
  EXPECT_EQ(stats.queries_ok, 2u);
}

TEST(ServiceTest, ResultCacheCanBeBypassed) {
  KgService svc;
  svc.Publish(ChainGraph(5));
  QueryRequest request = CopyLinksRequest();
  request.use_result_cache = false;
  auto first = svc.Query(request);
  auto second = svc.Query(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->result_cache_hit);
  EXPECT_NE(second->rows.get(), first->rows.get());
}

TEST(ServiceTest, PreparedCacheReusedAcrossEpochs) {
  KgService svc;
  svc.Publish(ChainGraph(4));
  ASSERT_TRUE(svc.Query(CopyLinksRequest()).ok());
  // Same label catalog, so the compiled program is reused even though the
  // result cache was invalidated.
  svc.Publish(ChainGraph(7));
  auto result = svc.Query(CopyLinksRequest());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->epoch, 2u);
  EXPECT_FALSE(result->result_cache_hit);
  EXPECT_EQ(result->rows->size(), 6u);

  StatsSnapshot stats = svc.Stats();
  EXPECT_EQ(stats.prepared_cache_misses, 1u);
  EXPECT_EQ(stats.prepared_cache_hits, 1u);
}

TEST(ServiceTest, PublishInvalidatesResultCache) {
  KgService svc;
  svc.Publish(ChainGraph(5));
  auto before = svc.Query(CopyLinksRequest());
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows->size(), 4u);

  svc.Publish(ChainGraph(9));
  auto after = svc.Query(CopyLinksRequest());
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->result_cache_hit);
  EXPECT_EQ(after->epoch, 2u);
  EXPECT_EQ(after->rows->size(), 8u);
}

TEST(ServiceTest, CompileErrorIsReported) {
  KgService svc;
  svc.Publish(ChainGraph(3));
  QueryRequest request;
  request.program = "this is not metalog";
  request.output = "X";
  auto result = svc.Query(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
      << result.status().ToString();

  StatsSnapshot stats = svc.Stats();
  EXPECT_EQ(stats.queries_failed, 1u);
}

TEST(ServiceTest, VadalogQueryRunsOverEncoding) {
  KgService svc;
  svc.Publish(ChainGraph(4));
  QueryRequest request;
  // The encoding exposes LINK edges as LINK(oid, from, to).
  request.program =
      "LINK(e, x, y) -> hop(x, y).\n"
      "hop(x, y), LINK(e, y, z) -> hop(x, z).";
  request.language = QueryLanguage::kVadalog;
  request.output = "hop";
  auto result = svc.Query(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Closure of a 3-edge chain: 3 + 2 + 1 pairs.
  EXPECT_EQ(result->rows->size(), 6u);
}

TEST(ServiceTest, ZeroCapacityQueueRejectsDeterministically) {
  KgServiceOptions options;
  options.queue_capacity = 0;
  KgService svc(options);
  svc.Publish(ChainGraph(3));

  auto queued = svc.Query(CopyLinksRequest());
  ASSERT_FALSE(queued.ok());
  EXPECT_EQ(queued.status().code(), StatusCode::kUnavailable);

  // Execute bypasses admission control and still works.
  auto direct = svc.Execute(CopyLinksRequest());
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(direct->rows->size(), 2u);

  StatsSnapshot stats = svc.Stats();
  EXPECT_EQ(stats.queue_rejected, 1u);
}

TEST(ServiceTest, DeadlineExceededThroughService) {
  KgService svc;
  svc.Publish(ChainGraph(3));
  // A big closure with a 1ms budget: the engine's cooperative checks cut
  // it off mid-fixpoint.
  std::ostringstream program;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    program << "@fact edge(" << i << ", " << (i + 1) % n << ").\n";
  }
  program << "edge(x, y) -> path(x, y).\n";
  program << "path(x, y), edge(y, z) -> path(x, z).\n";

  QueryRequest request;
  request.program = program.str();
  request.language = QueryLanguage::kVadalog;
  request.output = "path";
  request.timeout_ms = 1;
  auto result = svc.Query(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();

  StatsSnapshot stats = svc.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
}

TEST(ServiceTest, StatsJsonIsWellFormed) {
  KgService svc;
  svc.Publish(ChainGraph(3));
  ASSERT_TRUE(svc.Query(CopyLinksRequest()).ok());
  std::string json = svc.Stats().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"queries_ok\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"epoch\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency_p50\":"), std::string::npos) << json;
}

TEST(ServiceTest, WidenedCatalogFallsBackToFreshEncoding) {
  KgService svc;
  svc.Publish(ChainGraph(4));
  // Mentions an Item property the graph never had: the compiled catalog
  // widens Item's property list, so the snapshot encoding is incompatible
  // and the graph is re-encoded for this query.
  QueryRequest request;
  request.program =
      "(x: Item; extra: v)[: LINK](y: Item) -> exists e (x)[e: LINK3](y).";
  request.output = "LINK3";
  auto result = svc.Query(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->fresh_encoding);
}

}  // namespace
}  // namespace kgm::service
