// Serve-loop byte IO under adversarial POSIX conditions: EINTR storms,
// one-byte short writes, and mixes of both.  The helpers are templated on
// the raw IO callable, so the tests inject failures deterministically
// without a real socket, then a socketpair stress run checks the
// production-shaped lambdas end to end.

#include "service/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace kgm::service {
namespace {

TEST(WireTest, ReadRetriesThroughEintrStorm) {
  int interrupts_left = 57;
  const char payload[] = "hello";
  auto do_read = [&](void* buf, size_t len) -> ssize_t {
    if (interrupts_left > 0) {
      --interrupts_left;
      errno = EINTR;
      return -1;
    }
    size_t n = std::min(len, sizeof(payload) - 1);
    std::memcpy(buf, payload, n);
    return static_cast<ssize_t>(n);
  };
  char buf[16];
  ssize_t n = ReadSomeWith(do_read, buf, sizeof(buf));
  ASSERT_EQ(n, 5);
  EXPECT_EQ(std::string(buf, 5), "hello");
  EXPECT_EQ(interrupts_left, 0);
}

TEST(WireTest, ReadReportsEofAndRealErrors) {
  auto eof_read = [](void*, size_t) -> ssize_t { return 0; };
  char buf[4];
  EXPECT_EQ(ReadSomeWith(eof_read, buf, sizeof(buf)), 0);

  int interrupts_left = 2;
  auto failing_read = [&](void*, size_t) -> ssize_t {
    if (interrupts_left > 0) {
      --interrupts_left;
      errno = EINTR;
      return -1;
    }
    errno = ECONNRESET;
    return -1;
  };
  EXPECT_EQ(ReadSomeWith(failing_read, buf, sizeof(buf)), -1);
  EXPECT_EQ(errno, ECONNRESET);
}

TEST(WireTest, WriteLoopsOneBytShortWritesWithEintrMixedIn) {
  const std::string message = "epoch 3 LINK2 rows=5\n";
  std::string sink;
  int calls = 0;
  auto do_write = [&](const void* buf, size_t len) -> ssize_t {
    ++calls;
    if (calls % 3 == 0) {  // periodic interrupt mid-message
      errno = EINTR;
      return -1;
    }
    if (len == 0) return 0;
    sink.push_back(static_cast<const char*>(buf)[0]);  // 1-byte short write
    return 1;
  };
  ASSERT_TRUE(WriteAllWith(do_write, message.data(), message.size()));
  EXPECT_EQ(sink, message);
}

TEST(WireTest, WriteFailsOnRealErrorAndOnZeroProgress) {
  auto error_write = [](const void*, size_t) -> ssize_t {
    errno = EPIPE;
    return -1;
  };
  EXPECT_FALSE(WriteAllWith(error_write, "x", 1));

  auto stuck_write = [](const void*, size_t) -> ssize_t { return 0; };
  EXPECT_FALSE(WriteAllWith(stuck_write, "x", 1));
}

TEST(WireTest, ParsePortAcceptsOnlyRealPorts) {
  int port = -1;
  EXPECT_TRUE(ParsePort("1", &port));
  EXPECT_EQ(port, 1);
  EXPECT_TRUE(ParsePort("7077", &port));
  EXPECT_EQ(port, 7077);
  EXPECT_TRUE(ParsePort("65535", &port));
  EXPECT_EQ(port, 65535);

  // Everything std::atoi would silently mangle must be rejected.
  EXPECT_FALSE(ParsePort("", &port));
  EXPECT_FALSE(ParsePort("0", &port));
  EXPECT_FALSE(ParsePort("65536", &port));
  EXPECT_FALSE(ParsePort("99999", &port));
  EXPECT_FALSE(ParsePort("123456", &port));
  EXPECT_FALSE(ParsePort("8o80", &port));
  EXPECT_FALSE(ParsePort("8080 ", &port));
  EXPECT_FALSE(ParsePort(" 8080", &port));
  EXPECT_FALSE(ParsePort("-1", &port));
  EXPECT_FALSE(ParsePort("+80", &port));
  EXPECT_FALSE(ParsePort("0x50", &port));
}

// End-to-end over a real socketpair with the production-shaped lambdas:
// a large payload is streamed through a small socket buffer, so the writer
// takes genuine short writes while the reader drains concurrently.
TEST(WireTest, SocketpairStressSurvivesShortWrites) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Shrink the send buffer so writes go short.
  int small = 4096;
  setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  ::signal(SIGPIPE, SIG_IGN);

  std::string payload;
  payload.reserve(1 << 20);
  for (int i = 0; payload.size() < (1 << 20); ++i) {
    payload += "row " + std::to_string(i) + "\n";
  }

  std::string received;
  std::thread reader([&] {
    auto do_read = [&](void* buf, size_t len) -> ssize_t {
      return ::read(fds[1], buf, len);
    };
    char buf[1024];
    for (;;) {
      ssize_t n = ReadSomeWith(do_read, buf, sizeof(buf));
      ASSERT_GE(n, 0);
      if (n == 0) break;
      received.append(buf, static_cast<size_t>(n));
    }
  });

  auto do_write = [&](const void* buf, size_t len) -> ssize_t {
    return ::write(fds[0], buf, len);
  };
  EXPECT_TRUE(WriteAllWith(do_write, payload.data(), payload.size()));
  ::close(fds[0]);  // EOF for the reader
  reader.join();
  ::close(fds[1]);
  EXPECT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
}

}  // namespace
}  // namespace kgm::service
