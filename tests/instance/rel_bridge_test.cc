// Tests of the relational target for Algorithm 2: the same intensional
// component materializes against a relational database, demonstrating
// model independence (Section 6).

#include "instance/rel_bridge.h"

#include <gtest/gtest.h>

#include <set>

#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "metalog/runner.h"

namespace kgm::instance {
namespace {

pg::PropertyGraph SmallInstance() {
  pg::PropertyGraph g;
  pg::NodeId ada = g.AddNode(
      std::vector<std::string>{"PhysicalPerson", "Person"},
      {{"fiscalCode", Value("P1")},
       {"name", Value("ada")},
       {"surname", Value("rossi")},
       {"gender", Value("female")}});
  pg::NodeId acme = g.AddNode(
      std::vector<std::string>{"Business", "LegalPerson", "Person"},
      {{"fiscalCode", Value("C1")},
       {"businessName", Value("acme")},
       {"legalNature", Value("spa")},
       {"shareholdingCapital", Value(5000.0)}});
  pg::NodeId emca = g.AddNode(
      std::vector<std::string>{"Business", "LegalPerson", "Person"},
      {{"fiscalCode", Value("C2")},
       {"businessName", Value("emca")},
       {"legalNature", Value("srl")},
       {"shareholdingCapital", Value(100.0)}});
  pg::NodeId s1 = g.AddNode(std::vector<std::string>{"Share"},
                            {{"shareId", Value("S1")},
                             {"percentage", Value(0.6)}});
  g.AddEdge(ada, s1, "HOLDS",
            {{"right", Value("ownership")}, {"percentage", Value(0.6)}});
  g.AddEdge(s1, acme, "BELONGS_TO");
  g.AddEdge(acme, emca, "OWNS", {{"percentage", Value(0.7)}});
  return g;
}

TEST(RelBridgeTest, GraphRelationalRoundTrip) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph original = SmallInstance();
  auto db = GraphToRelational(schema, original);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Member relations: the Business entity spans business / legal_person /
  // person.
  EXPECT_EQ(db->GetTable("person")->size(), 3u);
  EXPECT_EQ(db->GetTable("legal_person")->size(), 2u);
  EXPECT_EQ(db->GetTable("business")->size(), 2u);
  EXPECT_EQ(db->GetTable("physical_person")->size(), 1u);
  EXPECT_EQ(db->GetTable("share")->size(), 1u);
  EXPECT_EQ(db->GetTable("holds")->size(), 1u);
  EXPECT_EQ(db->GetTable("owns")->size(), 1u);
  EXPECT_TRUE(db->ValidateForeignKeys().ok());

  auto back = RelationalToGraph(schema, *db);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_nodes(), original.num_nodes());
  EXPECT_EQ(back->num_edges(), original.num_edges());
  // Attributes survive, including edge properties.
  pg::NodeId acme2 = back->FindNode("Business", "fiscalCode", Value("C1"));
  ASSERT_NE(acme2, pg::kInvalidNode);
  EXPECT_EQ(*back->NodeProperty(acme2, "businessName"), Value("acme"));
  EXPECT_EQ(*back->NodeProperty(acme2, "shareholdingCapital"),
            Value(5000.0));
  auto holds = back->EdgesWithLabel("HOLDS");
  ASSERT_EQ(holds.size(), 1u);
  EXPECT_EQ(*back->EdgeProperty(holds[0], "percentage"), Value(0.6));
  EXPECT_EQ(*back->EdgeProperty(holds[0], "right"), Value("ownership"));
}

TEST(RelBridgeTest, FunctionalEdgeBecomesForeignKeyColumn) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  auto db = GraphToRelational(schema, SmallInstance());
  ASSERT_TRUE(db.ok());
  const rel::Table* share = db->GetTable("share");
  ASSERT_NE(share, nullptr);
  int fk = share->schema().ColumnIndex("belongs_to_fiscal_code");
  ASSERT_GE(fk, 0);
  EXPECT_EQ(share->rows()[0][fk], Value("C1"));
}

TEST(RelBridgeTest, MaterializeControlAgainstRelational) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph instance;
  auto biz = [&](const char* code) {
    return instance.AddNode(
        std::vector<std::string>{"Business", "LegalPerson", "Person"},
        {{"fiscalCode", Value(code)},
         {"businessName", Value(code)},
         {"legalNature", Value("srl")},
         {"shareholdingCapital", Value(1.0)}});
  };
  pg::NodeId a = biz("A");
  pg::NodeId b = biz("B");
  pg::NodeId c = biz("C");
  pg::NodeId d = biz("D");
  instance.AddEdge(a, b, "OWNS", {{"percentage", Value(0.6)}});
  instance.AddEdge(a, c, "OWNS", {{"percentage", Value(0.6)}});
  instance.AddEdge(b, d, "OWNS", {{"percentage", Value(0.3)}});
  instance.AddEdge(c, d, "OWNS", {{"percentage", Value(0.3)}});
  auto db = GraphToRelational(schema, instance);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  auto stats =
      MaterializeRelational(schema, finkg::kControlProgram, &*db);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const rel::Table* controls = db->GetTable("controls");
  ASSERT_NE(controls, nullptr);
  // 4 self + a->b, a->c, a->d.
  EXPECT_EQ(controls->size(), 7u);
  std::set<std::pair<std::string, std::string>> pairs;
  int from = controls->schema().ColumnIndex("person_fiscal_code");
  int to = controls->schema().ColumnIndex("business_fiscal_code");
  ASSERT_GE(from, 0);
  ASSERT_GE(to, 0);
  for (const auto& row : controls->rows()) {
    pairs.emplace(row[from].AsString(), row[to].AsString());
  }
  EXPECT_TRUE(pairs.count({"A", "D"}) > 0);
  EXPECT_FALSE(pairs.count({"B", "D"}) > 0);
  EXPECT_TRUE(db->ValidateForeignKeys().ok());
}

TEST(RelBridgeTest, RelationalAndGraphTargetsAgree) {
  // Model independence: identical Sigma, two targets, same results.
  core::SuperSchema schema = finkg::CompanyKgSchema();
  finkg::GeneratorConfig config;
  config.num_companies = 40;
  config.num_persons = 40;
  config.seed = 5;
  finkg::ShareholdingNetwork net =
      finkg::ShareholdingNetwork::Generate(config);

  pg::PropertyGraph graph_target = net.ToOwnershipGraph();
  auto rel_target = GraphToRelational(schema, net.ToOwnershipGraph());
  ASSERT_TRUE(rel_target.ok()) << rel_target.status().ToString();

  ASSERT_TRUE(
      Materialize(schema, finkg::kControlProgram, &graph_target).ok());
  ASSERT_TRUE(MaterializeRelational(schema, finkg::kControlProgram,
                                    &*rel_target)
                  .ok());

  std::set<std::pair<std::string, std::string>> graph_pairs;
  for (pg::EdgeId e : graph_target.EdgesWithLabel("CONTROLS")) {
    graph_pairs.emplace(
        graph_target.NodeProperty(graph_target.edge(e).from, "fiscalCode")
            ->AsString(),
        graph_target.NodeProperty(graph_target.edge(e).to, "fiscalCode")
            ->AsString());
  }
  std::set<std::pair<std::string, std::string>> rel_pairs;
  const rel::Table* controls = rel_target->GetTable("controls");
  ASSERT_NE(controls, nullptr);
  int from = controls->schema().ColumnIndex("person_fiscal_code");
  int to = controls->schema().ColumnIndex("business_fiscal_code");
  for (const auto& row : controls->rows()) {
    rel_pairs.emplace(row[from].AsString(), row[to].AsString());
  }
  EXPECT_EQ(graph_pairs, rel_pairs);
}

TEST(RelBridgeTest, FamiliesWithSurrogateKeys) {
  // Family has no identifying attributes: the relational export keys it by
  // the surrogate family_oid, and BELONGS_TO_FAMILY junction rows resolve.
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph instance;
  auto person = [&](const char* code) {
    instance.AddNode(std::vector<std::string>{"PhysicalPerson", "Person"},
                     {{"fiscalCode", Value(code)},
                      {"name", Value(code)},
                      {"surname", Value("rossi")},
                      {"gender", Value("female")}});
  };
  person("P1");
  person("P2");
  auto db = GraphToRelational(schema, instance);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto stats = MaterializeRelational(schema, finkg::kFamilyProgram, &*db);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(db->GetTable("family")->size(), 1u);
  EXPECT_EQ(db->GetTable("belongs_to_family")->size(), 2u);
  // Both directions of IS_RELATED_TO between P1 and P2.
  EXPECT_EQ(db->GetTable("is_related_to")->size(), 2u);
  EXPECT_TRUE(db->ValidateForeignKeys().ok());
}

TEST(RelBridgeTest, DanglingForeignKeyRejectedOnImport) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  auto db = GraphToRelational(schema, SmallInstance());
  ASSERT_TRUE(db.ok());
  // Corrupt: point the share's BELONGS_TO FK at a missing business.
  rel::Table* share = db->GetTable("share");
  ASSERT_TRUE(
      share->UpdateValue(0, "belongs_to_fiscal_code", Value("ZZZ")).ok());
  auto back = RelationalToGraph(schema, *db);
  EXPECT_FALSE(back.ok());
}

}  // namespace
}  // namespace kgm::instance
