// Property-based equivalence: running an intensional component through
// the full Algorithm 2 pipeline (load -> views -> reason -> flush) derives
// exactly the same edges as direct MetaLog execution on the data graph,
// across randomized shareholding networks.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "instance/pipeline.h"
#include "metalog/runner.h"

namespace kgm::instance {
namespace {

using EdgeSet = std::set<std::tuple<std::string, std::string, std::string>>;

// (label, from-fiscalCode, to-fiscalCode) triples of derived edges.
EdgeSet DerivedEdges(const pg::PropertyGraph& g,
                     const std::vector<std::string>& labels) {
  EdgeSet out;
  for (const std::string& label : labels) {
    for (pg::EdgeId e : g.EdgesWithLabel(label)) {
      const Value* from = g.NodeProperty(g.edge(e).from, "fiscalCode");
      const Value* to = g.NodeProperty(g.edge(e).to, "fiscalCode");
      if (from == nullptr || to == nullptr) continue;
      out.emplace(label, from->AsString(), to->AsString());
    }
  }
  return out;
}

class PipelineEquivalence
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {
 protected:
  pg::PropertyGraph MakeData() const {
    auto [companies, seed] = GetParam();
    finkg::GeneratorConfig config;
    config.num_companies = companies;
    config.num_persons = companies;
    config.seed = seed;
    return finkg::ShareholdingNetwork::Generate(config).ToOwnershipGraph();
  }
};

TEST_P(PipelineEquivalence, ControlViaPipelineEqualsDirect) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph staged = MakeData();
  pg::PropertyGraph direct = MakeData();

  auto pipeline = Materialize(schema, finkg::kControlProgram, &staged);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  auto direct_run =
      metalog::RunMetaLogSource(finkg::kControlProgram, &direct);
  ASSERT_TRUE(direct_run.ok()) << direct_run.status().ToString();

  EXPECT_EQ(DerivedEdges(staged, {"CONTROLS"}),
            DerivedEdges(direct, {"CONTROLS"}));
}

TEST_P(PipelineEquivalence, CloseLinksViaPipelineEqualsDirect) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph staged = MakeData();
  pg::PropertyGraph direct = MakeData();

  auto pipeline = Materialize(schema, finkg::kCloseLinksProgram, &staged);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  auto direct_run =
      metalog::RunMetaLogSource(finkg::kCloseLinksProgram, &direct);
  ASSERT_TRUE(direct_run.ok()) << direct_run.status().ToString();

  EXPECT_EQ(DerivedEdges(staged, {"CLOSE_LINK"}),
            DerivedEdges(direct, {"CLOSE_LINK"}));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineEquivalence,
    ::testing::Combine(::testing::Values(size_t{20}, size_t{60},
                                         size_t{150}),
                       ::testing::Values(uint64_t{4}, uint64_t{23},
                                         uint64_t{2022})));

}  // namespace
}  // namespace kgm::instance
