// End-to-end tests of Algorithm 2: load -> (V_I + Sigma + V_O) -> flush.

#include <gtest/gtest.h>

#include <set>

#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "instance/pipeline.h"
#include "metalog/parser.h"

namespace kgm::instance {
namespace {

pg::NodeId AddBusiness(pg::PropertyGraph* g, const std::string& code) {
  return g->AddNode(
      std::vector<std::string>{"Business", "LegalPerson", "Person"},
      {{"fiscalCode", Value(code)}, {"businessName", Value(code)}});
}

void AddOwns(pg::PropertyGraph* g, pg::NodeId from, pg::NodeId to,
             double pct) {
  g->AddEdge(from, to, "OWNS", {{"percentage", Value(pct)}});
}

bool HasEdgeBetween(const pg::PropertyGraph& g, const std::string& label,
                    pg::NodeId from, pg::NodeId to) {
  for (pg::EdgeId e : g.EdgesWithLabel(label)) {
    if (g.edge(e).from == from && g.edge(e).to == to) return true;
  }
  return false;
}

TEST(ViewGenerationTest, InputViewsCoverSigmaBodyLabels) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  auto sigma = metalog::ParseMetaProgram(finkg::kControlProgram);
  ASSERT_TRUE(sigma.ok());
  SigmaAnalysis analysis = AnalyzeSigma(*sigma);
  EXPECT_TRUE(analysis.body_node_labels.count("Business") > 0);
  EXPECT_TRUE(analysis.body_edge_labels.count("OWNS") > 0);
  EXPECT_TRUE(analysis.body_edge_labels.count("CONTROLS") > 0);
  EXPECT_TRUE(analysis.head_edge_labels.count("CONTROLS") > 0);
  auto views = GenerateInputViews(schema, *sigma, 234);
  ASSERT_TRUE(views.ok()) << views.status().ToString();
  EXPECT_NE(views->find("pack(m, v)"), std::string::npos);
  EXPECT_NE(views->find("(c: Business; *p)"), std::string::npos);
  // The generated views must themselves parse.
  EXPECT_TRUE(metalog::ParseMetaProgram(*views).ok());
  auto out_views = GenerateOutputViews(schema, *sigma, 234);
  ASSERT_TRUE(out_views.ok()) << out_views.status().ToString();
  EXPECT_TRUE(metalog::ParseMetaProgram(*out_views).ok());
  EXPECT_NE(out_views->find("O_SM_Edge"), std::string::npos);
}

TEST(ViewGenerationTest, UnknownLabelRejected) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  auto sigma = metalog::ParseMetaProgram(
      "(x: Nonsense) -> (x)[: CONTROLS](x).");
  ASSERT_TRUE(sigma.ok());
  EXPECT_FALSE(GenerateInputViews(schema, *sigma, 1).ok());
}

TEST(PipelineTest, ControlMaterializationEndToEnd) {
  // The joint-control scenario, driven through the *full* Algorithm 2:
  // the data graph holds OWNS edges; CONTROLS materializes back into it.
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph data;
  pg::NodeId a = AddBusiness(&data, "A");
  pg::NodeId b = AddBusiness(&data, "B");
  pg::NodeId c = AddBusiness(&data, "C");
  pg::NodeId d = AddBusiness(&data, "D");
  AddOwns(&data, a, b, 0.6);
  AddOwns(&data, a, c, 0.6);
  AddOwns(&data, b, d, 0.3);
  AddOwns(&data, c, d, 0.3);

  auto stats = Materialize(schema, finkg::kControlProgram, &data);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->loaded_nodes, 4u);
  EXPECT_EQ(stats->loaded_edges, 4u);
  EXPECT_EQ(stats->new_edges, 7u);  // 4 self + a->b, a->c, a->d
  EXPECT_TRUE(HasEdgeBetween(data, "CONTROLS", a, b));
  EXPECT_TRUE(HasEdgeBetween(data, "CONTROLS", a, d));
  EXPECT_FALSE(HasEdgeBetween(data, "CONTROLS", b, d));
  EXPECT_GT(stats->reason_seconds, 0.0);
  EXPECT_GT(stats->vadalog_rules, 0u);
  EXPECT_FALSE(stats->input_views.empty());
  EXPECT_FALSE(stats->output_views.empty());
}

TEST(PipelineTest, RematerializationIsIdempotent) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph data;
  pg::NodeId a = AddBusiness(&data, "A");
  pg::NodeId b = AddBusiness(&data, "B");
  AddOwns(&data, a, b, 0.8);
  ASSERT_TRUE(Materialize(schema, finkg::kControlProgram, &data).ok());
  size_t edges = data.num_edges();
  auto again = Materialize(schema, finkg::kControlProgram, &data);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->new_edges, 0u);
  EXPECT_EQ(data.num_edges(), edges);
}

TEST(PipelineTest, DerivedPropertyOnExistingEntity) {
  // numberOfStakeholders: a property update flowing through
  // O_SM_PropUpdate back onto the existing Business node.
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph data;
  pg::NodeId ada = data.AddNode(
      std::vector<std::string>{"PhysicalPerson", "Person"},
      {{"fiscalCode", Value("P1")}, {"surname", Value("rossi")}});
  pg::NodeId bob = data.AddNode(
      std::vector<std::string>{"PhysicalPerson", "Person"},
      {{"fiscalCode", Value("P2")}, {"surname", Value("verdi")}});
  pg::NodeId acme = AddBusiness(&data, "C1");
  pg::NodeId s1 = data.AddNode(std::vector<std::string>{"Share"},
                               {{"shareId", Value("S1")},
                                {"percentage", Value(0.6)}});
  pg::NodeId s2 = data.AddNode(std::vector<std::string>{"Share"},
                               {{"shareId", Value("S2")},
                                {"percentage", Value(0.4)}});
  data.AddEdge(ada, s1, "HOLDS",
               {{"right", Value("ownership")}, {"percentage", Value(0.6)}});
  data.AddEdge(bob, s2, "HOLDS",
               {{"right", Value("ownership")}, {"percentage", Value(0.4)}});
  data.AddEdge(s1, acme, "BELONGS_TO");
  data.AddEdge(s2, acme, "BELONGS_TO");

  auto stats = Materialize(schema, finkg::kStakeholdersProgram, &data);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->updated_properties, 1u);
  const Value* n = data.NodeProperty(acme, "numberOfStakeholders");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(*n, Value(int64_t{2}));
}

TEST(PipelineTest, DerivedNodesWithAttributesAndEdges) {
  // Families: new Family nodes (with familyName) plus BELONGS_TO_FAMILY
  // edges from existing persons to the new nodes.
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph data;
  data.AddNode(std::vector<std::string>{"PhysicalPerson", "Person"},
               {{"fiscalCode", Value("P1")}, {"surname", Value("rossi")}});
  data.AddNode(std::vector<std::string>{"PhysicalPerson", "Person"},
               {{"fiscalCode", Value("P2")}, {"surname", Value("rossi")}});
  data.AddNode(std::vector<std::string>{"PhysicalPerson", "Person"},
               {{"fiscalCode", Value("P3")}, {"surname", Value("verdi")}});

  auto stats = Materialize(schema, finkg::kFamilyProgram, &data);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->new_nodes, 2u);  // rossi, verdi families
  auto families = data.NodesWithLabel("Family");
  ASSERT_EQ(families.size(), 2u);
  std::set<std::string> names;
  for (pg::NodeId f : families) {
    const Value* name = data.NodeProperty(f, "familyName");
    ASSERT_NE(name, nullptr);
    names.insert(name->AsString());
  }
  EXPECT_EQ(names, (std::set<std::string>{"rossi", "verdi"}));
  EXPECT_EQ(data.EdgesWithLabel("BELONGS_TO_FAMILY").size(), 3u);
  // IS_RELATED_TO between the two rossi persons, both directions.
  EXPECT_EQ(data.EdgesWithLabel("IS_RELATED_TO").size(), 2u);
}

TEST(PipelineTest, EdgePropertiesFlowThroughOutputViews) {
  // OWNS derived from HOLDS/BELONGS_TO carries its percentage through
  // O_SM_Attribute back into the data graph.
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph data;
  pg::NodeId ada = data.AddNode(
      std::vector<std::string>{"PhysicalPerson", "Person"},
      {{"fiscalCode", Value("P1")}, {"surname", Value("rossi")}});
  pg::NodeId acme = AddBusiness(&data, "C1");
  pg::NodeId s1 = data.AddNode(std::vector<std::string>{"Share"},
                               {{"shareId", Value("S1")},
                                {"percentage", Value(0.3)}});
  pg::NodeId s2 = data.AddNode(std::vector<std::string>{"Share"},
                               {{"shareId", Value("S2")},
                                {"percentage", Value(0.25)}});
  data.AddEdge(ada, s1, "HOLDS",
               {{"right", Value("ownership")}, {"percentage", Value(0.3)}});
  data.AddEdge(ada, s2, "HOLDS",
               {{"right", Value("ownership")},
                {"percentage", Value(0.25)}});
  data.AddEdge(s1, acme, "BELONGS_TO");
  data.AddEdge(s2, acme, "BELONGS_TO");

  auto stats = Materialize(schema, finkg::kOwnsProgram, &data);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto owns = data.EdgesWithLabel("OWNS");
  ASSERT_EQ(owns.size(), 1u);
  EXPECT_EQ(data.edge(owns[0]).from, ada);
  EXPECT_EQ(data.edge(owns[0]).to, acme);
  const Value* pct = data.EdgeProperty(owns[0], "percentage");
  ASSERT_NE(pct, nullptr);
  EXPECT_NEAR(pct->AsDouble(), 0.55, 1e-9);
}

TEST(PipelineTest, GeneratedNetworkRoundTrip) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  finkg::GeneratorConfig config;
  config.num_companies = 60;
  config.num_persons = 90;
  config.seed = 11;
  finkg::ShareholdingNetwork net =
      finkg::ShareholdingNetwork::Generate(config);
  pg::PropertyGraph data = net.ToOwnershipGraph();
  auto stats = Materialize(schema, finkg::kControlProgram, &data);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // At least the self-control edges.
  EXPECT_GE(data.EdgesWithLabel("CONTROLS").size(), 60u);
  EXPECT_GE(stats->new_edges, 60u);
}

}  // namespace
}  // namespace kgm::instance
