#include "instance/loader.h"

#include <gtest/gtest.h>

#include "finkg/company_kg.h"

namespace kgm::instance {
namespace {

pg::PropertyGraph SmallData() {
  pg::PropertyGraph g;
  pg::NodeId ada = g.AddNode(
      std::vector<std::string>{"PhysicalPerson", "Person"},
      {{"fiscalCode", Value("P1")},
       {"name", Value("ada")},
       {"surname", Value("rossi")},
       {"gender", Value("female")}});
  pg::NodeId acme = g.AddNode(
      std::vector<std::string>{"Business", "LegalPerson", "Person"},
      {{"fiscalCode", Value("C1")},
       {"businessName", Value("acme")},
       {"legalNature", Value("spa")},
       {"shareholdingCapital", Value(5000.0)}});
  pg::NodeId share = g.AddNode(std::vector<std::string>{"Share"},
                               {{"shareId", Value("S1")},
                                {"percentage", Value(0.6)}});
  g.AddEdge(ada, share, "HOLDS",
            {{"right", Value("ownership")}, {"percentage", Value(0.6)}});
  g.AddEdge(share, acme, "BELONGS_TO");
  return g;
}

TEST(LoaderTest, LoadsNodesEdgesAndAttributes) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph data = SmallData();
  auto loaded = LoadInstance(schema, data);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->loaded_nodes, 3u);
  EXPECT_EQ(loaded->loaded_edges, 2u);
  // ada: 4 props, acme: 4 props, share: 2 props, HOLDS: 2 props.
  EXPECT_EQ(loaded->loaded_attributes, 12u);
  EXPECT_EQ(loaded->dict.NodesWithLabel(kISmNode).size(), 3u);
  EXPECT_EQ(loaded->dict.NodesWithLabel(kISmEdge).size(), 2u);
  EXPECT_EQ(loaded->dict.NodesWithLabel(kISmAttribute).size(), 12u);
}

TEST(LoaderTest, InstanceConstructsReferenceSchemaConstructs) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph data = SmallData();
  auto loaded = LoadInstance(schema, data);
  ASSERT_TRUE(loaded.ok());
  const pg::PropertyGraph& dict = loaded->dict;
  // Every I_SM_Node has exactly one SM_REFERENCES to an SM_Node.
  for (pg::NodeId i : dict.NodesWithLabel(kISmNode)) {
    int refs = 0;
    for (pg::EdgeId e : dict.OutEdges(i)) {
      if (dict.edge(e).label == kSmReferences) {
        EXPECT_TRUE(dict.node(dict.edge(e).to).HasLabel("SM_Node"));
        ++refs;
      }
    }
    EXPECT_EQ(refs, 1);
    const Value* oid = dict.NodeProperty(i, "instanceOID");
    ASSERT_NE(oid, nullptr);
    EXPECT_EQ(*oid, Value(int64_t{234}));
  }
  // Every I_SM_Edge has I_SM_FROM and I_SM_TO.
  for (pg::NodeId i : dict.NodesWithLabel(kISmEdge)) {
    int from = 0;
    int to = 0;
    for (pg::EdgeId e : dict.OutEdges(i)) {
      if (dict.edge(e).label == kISmFrom) ++from;
      if (dict.edge(e).label == kISmTo) ++to;
    }
    EXPECT_EQ(from, 1);
    EXPECT_EQ(to, 1);
  }
}

TEST(LoaderTest, InheritedAttributeResolvesToAncestorConstruct) {
  // fiscalCode is declared on Person; a Business instance's fiscalCode
  // must reference Person's SM_Attribute.
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph data = SmallData();
  auto loaded = LoadInstance(schema, data);
  ASSERT_TRUE(loaded.ok());
  const pg::PropertyGraph& dict = loaded->dict;
  bool checked = false;
  for (pg::NodeId ia : dict.NodesWithLabel(kISmAttribute)) {
    const Value* v = dict.NodeProperty(ia, "value");
    if (v == nullptr || !(*v == Value("C1"))) continue;
    for (pg::EdgeId e : dict.OutEdges(ia)) {
      if (dict.edge(e).label != kSmReferences) continue;
      const Value* name = dict.NodeProperty(dict.edge(e).to, "name");
      ASSERT_NE(name, nullptr);
      EXPECT_EQ(*name, Value("fiscalCode"));
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(LoaderTest, UnknownLabelsAndPropsSkipped) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph data;
  data.AddNode("Alien", {{"x", Value(int64_t{1})}});
  data.AddNode(std::vector<std::string>{"PhysicalPerson", "Person"},
               {{"fiscalCode", Value("P9")},
                {"undeclaredProp", Value("zap")}});
  auto loaded = LoadInstance(schema, data);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->loaded_nodes, 1u);       // Alien skipped
  EXPECT_EQ(loaded->loaded_attributes, 1u);  // undeclaredProp skipped
}

TEST(LoaderTest, EdgeWithUnloadedEndpointSkipped) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph data;
  pg::NodeId alien = data.AddNode("Alien");
  pg::NodeId person = data.AddNode(
      std::vector<std::string>{"PhysicalPerson", "Person"},
      {{"fiscalCode", Value("P1")}});
  data.AddEdge(person, alien, "HOLDS");
  auto loaded = LoadInstance(schema, data);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->loaded_edges, 0u);
}

}  // namespace
}  // namespace kgm::instance
