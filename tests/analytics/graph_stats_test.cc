#include "analytics/graph_stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace kgm::analytics {
namespace {

Digraph Chain(size_t n) {
  Digraph g;
  g.num_nodes = n;
  for (uint32_t i = 0; i + 1 < n; ++i) g.edges.emplace_back(i, i + 1);
  return g;
}

TEST(SccTest, ChainHasTrivialSccs) {
  ComponentSummary s = StronglyConnectedComponents(Chain(10));
  EXPECT_EQ(s.count, 10u);
  EXPECT_EQ(s.max_size, 1u);
  EXPECT_DOUBLE_EQ(s.avg_size, 1.0);
}

TEST(SccTest, CycleIsOneScc) {
  Digraph g = Chain(5);
  g.edges.emplace_back(4, 0);
  ComponentSummary s = StronglyConnectedComponents(g);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.max_size, 5u);
}

TEST(SccTest, MixedGraph) {
  // 3-cycle + 2 tail nodes + 1 isolated.
  Digraph g;
  g.num_nodes = 6;
  g.edges = {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}};
  ComponentSummary s = StronglyConnectedComponents(g);
  EXPECT_EQ(s.count, 4u);  // {0,1,2}, {3}, {4}, {5}
  EXPECT_EQ(s.max_size, 3u);
}

TEST(WccTest, Components) {
  Digraph g;
  g.num_nodes = 7;
  g.edges = {{0, 1}, {2, 1}, {3, 4}};  // {0,1,2}, {3,4}, {5}, {6}
  ComponentSummary s = WeaklyConnectedComponents(g);
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.max_size, 3u);
  EXPECT_DOUBLE_EQ(s.avg_size, 7.0 / 4);
}

TEST(DegreeTest, AveragesOverIncidentNodesOnly) {
  // Star: node 0 -> 1,2,3; node 4 isolated.
  Digraph g;
  g.num_nodes = 5;
  g.edges = {{0, 1}, {0, 2}, {0, 3}};
  DegreeStats d = ComputeDegreeStats(g);
  EXPECT_DOUBLE_EQ(d.avg_out, 3.0);  // only node 0 has out-edges
  EXPECT_DOUBLE_EQ(d.avg_in, 1.0);   // 1,2,3 each in-degree 1
  EXPECT_EQ(d.max_out, 3u);
  EXPECT_EQ(d.max_in, 1u);
  EXPECT_EQ(d.nodes_with_out, 1u);
  EXPECT_EQ(d.nodes_with_in, 3u);
}

TEST(ClusteringTest, TriangleIsFullyClustered) {
  Digraph g;
  g.num_nodes = 3;
  g.edges = {{0, 1}, {1, 2}, {2, 0}};
  EXPECT_NEAR(AverageClusteringCoefficient(g), 1.0, 1e-9);
}

TEST(ClusteringTest, StarHasZeroClustering) {
  Digraph g;
  g.num_nodes = 4;
  g.edges = {{0, 1}, {0, 2}, {0, 3}};
  EXPECT_NEAR(AverageClusteringCoefficient(g), 0.0, 1e-9);
}

TEST(ClusteringTest, SquareWithDiagonal) {
  // 0-1-2-3-0 plus diagonal 0-2: triangles (0,1,2) and (0,2,3).
  Digraph g;
  g.num_nodes = 4;
  g.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  // c(0)=c(2)=2/3 (deg 3), c(1)=c(3)=1 (deg 2, connected neighbours).
  EXPECT_NEAR(AverageClusteringCoefficient(g), (2.0 / 3 + 1) / 2, 1e-9);
}

TEST(ClusteringTest, SamplingPathAgreesWithExact) {
  // A clique of 40 nodes: clustering 1.0 whether exact or sampled.
  Digraph g;
  g.num_nodes = 40;
  for (uint32_t i = 0; i < 40; ++i) {
    for (uint32_t j = i + 1; j < 40; ++j) g.edges.emplace_back(i, j);
  }
  double exact = AverageClusteringCoefficient(g, /*exact_cap=*/256);
  double sampled = AverageClusteringCoefficient(g, /*exact_cap=*/8,
                                                /*samples=*/400);
  EXPECT_NEAR(exact, 1.0, 1e-9);
  EXPECT_NEAR(sampled, 1.0, 0.05);
}

TEST(PowerLawTest, MleRecoverExponent) {
  // Sample a power law with alpha = 2.5 via inverse transform.
  std::vector<size_t> degrees;
  uint64_t state = 12345;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    double u = static_cast<double>(state >> 11) * 0x1.0p-53;
    double x = std::pow(1.0 - u, -1.0 / 1.5);  // alpha-1 = 1.5
    degrees.push_back(static_cast<size_t>(x));
  }
  // Truncating the continuous sample to integers biases the discrete MLE
  // downwards slightly; the estimator is used for shape-level claims only.
  double alpha = PowerLawAlphaMle(degrees, 2);
  EXPECT_NEAR(alpha, 2.5, 0.4);
}

TEST(PowerLawTest, TooFewSamplesReturnsZero) {
  EXPECT_EQ(PowerLawAlphaMle({5, 6, 7}, 2), 0.0);
}

TEST(HistogramTest, CountsDegrees) {
  auto hist = DegreeHistogram({0, 1, 1, 2, 2, 2});
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 3u);
}

TEST(ReportTest, FullReportAndTable) {
  Digraph g;
  g.num_nodes = 6;
  g.edges = {{0, 1}, {1, 2}, {2, 0}, {3, 1}, {4, 1}};
  GraphStatsReport r = ComputeGraphStats(g);
  EXPECT_EQ(r.num_nodes, 6u);
  EXPECT_EQ(r.num_edges, 5u);
  EXPECT_EQ(r.scc.max_size, 3u);
  std::string table = RenderStatsTable(r);
  EXPECT_NE(table.find("SCC count"), std::string::npos);
  EXPECT_NE(table.find("11.97M"), std::string::npos);  // paper column
  std::string bare = RenderStatsTable(r, /*include_paper_column=*/false);
  EXPECT_EQ(bare.find("11.97M"), std::string::npos);
}

}  // namespace
}  // namespace kgm::analytics
